#include "distrib/shard_worker.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>

#include "core/merge_source.h"
#include "core/merge_table.h"
#include "core/registry.h"
#include "core/two_table_merger.h"
#include "embed/matrix_io.h"
#include "embed/serialize.h"

namespace multiem::distrib {

namespace {

std::vector<uint64_t> ToU64(const std::vector<size_t>& v) {
  return std::vector<uint64_t>(v.begin(), v.end());
}

}  // namespace

std::string ShardDirName(size_t worker) {
  return "shard_" + std::to_string(worker);
}

std::string ShardManifestName() { return "shard.mem"; }

std::string MergeOutputName(size_t node) {
  return "merge_" + std::to_string(node) + ".mem";
}

std::vector<ShardAssignment> PartitionPlan(const core::MergePlan& plan,
                                           size_t num_workers) {
  if (plan.num_leaves() == 0) return {};
  size_t want =
      std::max<size_t>(1, std::min(num_workers, plan.num_leaves()));
  // The live-node count strictly shrinks per level, so the deepest level
  // that still offers `want` nodes is the one whose frontier cut hands each
  // worker the largest possible subtree.
  size_t frontier_level = 0;
  for (size_t l = 1; l <= plan.levels().size(); ++l) {
    if (plan.LiveNodesAtLevel(l).size() >= want) frontier_level = l;
  }
  std::vector<size_t> frontier = plan.LiveNodesAtLevel(frontier_level);
  std::vector<ShardAssignment> out(want);
  size_t chunk = frontier.size() / want;
  size_t rem = frontier.size() % want;
  size_t pos = 0;
  for (size_t w = 0; w < want; ++w) {
    ShardAssignment& a = out[w];
    a.worker = w;
    size_t count = chunk + (w < rem ? 1 : 0);
    for (size_t i = 0; i < count; ++i) {
      size_t root = frontier[pos++];
      a.roots.push_back(root);
      std::vector<size_t> leaves = plan.SubtreeLeaves(root);
      a.sources.insert(a.sources.end(), leaves.begin(), leaves.end());
    }
    std::sort(a.roots.begin(), a.roots.end());
    std::sort(a.sources.begin(), a.sources.end());
  }
  return out;
}

util::Result<FittedRepresentation> FitRepresentation(
    const core::MultiEmConfig& config,
    const std::vector<table::Table>& tables, util::ThreadPool* pool) {
  if (tables.empty()) {
    return util::Status::InvalidArgument("no tables to fit on");
  }
  auto created = core::TextEncoders().Create(config.encoder_name, config);
  if (!created.ok()) return created.status();
  FittedRepresentation fitted;
  fitted.encoder = std::move(*created);

  // Replays the representation prefix of MultiEmPipeline::Run verbatim:
  // full-schema corpus fit, attribute selection, then the refit on the
  // selected-column corpus. Every step is deterministic in (tables,
  // config), which is what lets N processes run this independently and
  // agree bit for bit.
  {
    std::vector<std::string> corpus;
    for (const table::Table& t : tables) {
      std::vector<std::string> texts = embed::SerializeTable(t);
      corpus.insert(corpus.end(), std::make_move_iterator(texts.begin()),
                    std::make_move_iterator(texts.end()));
    }
    fitted.encoder->FitCorpus(corpus);
  }
  if (config.enable_attribute_selection) {
    core::AttributeSelector selector(fitted.encoder.get(), config);
    auto selection = selector.Run(tables, pool);
    if (!selection.ok()) return selection.status();
    fitted.selection = std::move(*selection);
  } else {
    for (size_t c = 0; c < tables[0].num_columns(); ++c) {
      fitted.selection.selected_columns.push_back(c);
      fitted.selection.selected_names.push_back(tables[0].schema().name(c));
    }
    fitted.selection.shuffle_similarity.assign(tables[0].num_columns(), 0.0);
  }
  {
    std::vector<std::string> corpus;
    for (const table::Table& t : tables) {
      std::vector<std::string> texts =
          embed::SerializeTable(t, fitted.selection.selected_columns);
      corpus.insert(corpus.end(), std::make_move_iterator(texts.begin()),
                    std::make_move_iterator(texts.end()));
    }
    fitted.encoder->FitCorpus(corpus);
  }
  return fitted;
}

util::Status RunShardWorker(const core::MultiEmConfig& config,
                            const std::vector<table::Table>& tables,
                            const ShardAssignment& assignment,
                            const ShardWorkerOptions& options) {
  MULTIEM_RETURN_IF_ERROR(config.ValidateValues());
  if (options.shard_dir.empty()) {
    return util::Status::InvalidArgument("shard_dir must be set");
  }
  if (assignment.sources.empty()) {
    return util::Status::InvalidArgument(
        "shard assignment covers no sources");
  }
  for (size_t s : assignment.sources) {
    if (s >= tables.size()) {
      return util::Status::OutOfRange(
          "shard assignment names source " + std::to_string(s) + " but only " +
          std::to_string(tables.size()) + " tables were given");
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(options.shard_dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create shard directory '" +
                                  options.shard_dir + "': " + ec.message());
  }

  auto fitted = FitRepresentation(config, tables, options.pool);
  if (!fitted.ok()) return fitted.status();
  auto factory =
      core::IndexFactories().Create(config.effective_index_name(), config);
  if (!factory.ok()) return factory.status();

  // Encode only the covered sources; uncovered slots get empty placeholder
  // matrices so EntityId::source keeps indexing the store globally. The
  // merges below only ever look up entities of covered sources.
  const size_t dim = fitted->encoder->dim();
  std::vector<bool> covered(tables.size(), false);
  for (size_t s : assignment.sources) covered[s] = true;
  core::EntityEmbeddingStore store;
  for (size_t s = 0; s < tables.size(); ++s) {
    if (covered[s]) {
      std::vector<std::string> texts = embed::SerializeTable(
          tables[s], fitted->selection.selected_columns);
      store.AddSource(fitted->encoder->EncodeBatch(texts, options.pool));
    } else {
      store.AddSource(embed::EmbeddingMatrix(0, dim));
    }
  }

  core::MergePlan plan = core::MergePlan::Build(tables.size(), config.seed);
  std::vector<core::MergeSource> slots(plan.num_nodes());
  for (size_t s : assignment.sources) {
    slots[s] = core::MergeSource::FromTable(
        core::MergeTable::FromSource(static_cast<uint32_t>(s),
                                     store.source(s)));
  }

  core::TwoTableMerger merger(config, &store, factory->get());
  core::MergeExecOptions exec;
  exec.spill_outputs = true;
  exec.spill_dir = options.shard_dir;
  exec.name_by_node = true;
  exec.cleanup = true;
  core::MergeExecStats stats;
  for (size_t root : assignment.roots) {
    if (plan.node(root).is_leaf()) continue;  // base embeddings only
    MULTIEM_RETURN_IF_ERROR(core::ExecuteMergeSubtree(
        plan, root, slots, merger, exec, options.pool, &stats));
  }

  // The manifest goes last (and lands atomically): its presence certifies
  // that every merge_<node>.mem above it is complete.
  util::ArtifactWriter manifest(kShardMagic, kShardVersion);
  util::ByteWriter& meta = manifest.AddSection("meta");
  meta.WriteU64(tables.size());
  meta.WriteU64(config.seed);
  meta.WriteU64(dim);
  std::vector<uint64_t> sources64 = ToU64(assignment.sources);
  std::vector<uint64_t> roots64 = ToU64(assignment.roots);
  std::vector<uint64_t> columns64 =
      ToU64(fitted->selection.selected_columns);
  meta.WriteU64Array(sources64);
  meta.WriteU64Array(roots64);
  meta.WriteU64Array(columns64);
  util::ByteWriter& stats_out = manifest.AddSection("stats");
  stats_out.WriteU64(stats.nodes.size());
  for (const core::MergeNodeStats& node : stats.nodes) {
    stats_out.WriteU64(node.node);
    stats_out.WriteU64(node.mutual_pairs);
    stats_out.WriteU64(node.merged_items);
    stats_out.WriteU64(node.carried_items);
    stats_out.WriteU64(node.attempts);
  }
  for (size_t s : assignment.sources) {
    util::ByteWriter& base =
        manifest.AddSection("base_" + std::to_string(s));
    embed::WriteMatrix(base, store.source(s));
  }
  return manifest.WriteFile(options.shard_dir + "/" + ShardManifestName());
}

util::Result<ShardArtifact> OpenShardArtifact(
    const std::string& shard_dir, const util::ArtifactOpenOptions& options) {
  auto reader = util::ArtifactReader::FromFile(
      shard_dir + "/" + ShardManifestName(), kShardMagic, kShardVersion,
      options);
  if (!reader.ok()) return reader.status();

  ShardArtifact shard;
  auto meta = reader->Section("meta");
  if (!meta.ok()) return meta.status();
  MULTIEM_RETURN_IF_ERROR(meta->ReadU64(&shard.total_sources));
  MULTIEM_RETURN_IF_ERROR(meta->ReadU64(&shard.seed));
  MULTIEM_RETURN_IF_ERROR(meta->ReadU64(&shard.dim));
  MULTIEM_RETURN_IF_ERROR(meta->ReadU64Array(&shard.covered_sources));
  MULTIEM_RETURN_IF_ERROR(meta->ReadU64Array(&shard.roots));
  MULTIEM_RETURN_IF_ERROR(meta->ReadU64Array(&shard.selected_columns));

  auto stats = reader->Section("stats");
  if (!stats.ok()) return stats.status();
  uint64_t count = 0;
  MULTIEM_RETURN_IF_ERROR(stats->ReadU64(&count));
  shard.node_stats.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t node = 0, mutual = 0, merged = 0, carried = 0;
    uint64_t attempts = 1;  // v1 rows have no attempts column
    MULTIEM_RETURN_IF_ERROR(stats->ReadU64(&node));
    MULTIEM_RETURN_IF_ERROR(stats->ReadU64(&mutual));
    MULTIEM_RETURN_IF_ERROR(stats->ReadU64(&merged));
    MULTIEM_RETURN_IF_ERROR(stats->ReadU64(&carried));
    if (reader->version() >= 2) {
      MULTIEM_RETURN_IF_ERROR(stats->ReadU64(&attempts));
    }
    shard.node_stats.push_back(core::MergeNodeStats{
        static_cast<size_t>(node), static_cast<size_t>(mutual),
        static_cast<size_t>(merged), static_cast<size_t>(carried),
        static_cast<size_t>(attempts)});
  }

  shard.bases.reserve(shard.covered_sources.size());
  for (uint64_t s : shard.covered_sources) {
    auto base = reader->Section("base_" + std::to_string(s));
    if (!base.ok()) return base.status();
    embed::EmbeddingMatrix m;
    MULTIEM_RETURN_IF_ERROR(embed::ReadMatrix(*base, reader->backing(), &m));
    shard.bases.push_back(std::move(m));
  }
  shard.backing = reader->backing();
  return shard;
}

}  // namespace multiem::distrib
