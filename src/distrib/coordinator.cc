#include "distrib/coordinator.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/merge_plan.h"
#include "core/merge_source.h"
#include "core/merge_table.h"
#include "core/registry.h"
#include "core/two_table_merger.h"
#include "distrib/shard_worker.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/subprocess.h"
#include "util/timer.h"

namespace multiem::distrib {

namespace {

/// SIGKILL, spelled as a constant so this file still compiles under the
/// non-POSIX util::Subprocess fallback (where every call returns
/// Unimplemented long before a signal is sent).
constexpr int kSigKill = 9;

/// Same input contract as MultiEmPipeline::Run.
util::Status ValidateTables(const std::vector<table::Table>& tables) {
  if (tables.size() < 2) {
    return util::Status::InvalidArgument(
        "multi-table EM needs at least 2 tables, got " +
        std::to_string(tables.size()));
  }
  std::unordered_set<std::string> names;
  for (const table::Table& t : tables) {
    if (t.num_rows() == 0) {
      return util::Status::InvalidArgument(
          "table '" + t.name() +
          "' is empty: every input table needs at least one row");
    }
    if (!names.insert(t.name()).second) {
      return util::Status::InvalidArgument(
          "duplicate table name '" + t.name() +
          "': table names identify sources and must be unique");
    }
    if (t.schema() != tables[0].schema()) {
      return util::Status::InvalidArgument(
          "table '" + t.name() + "' does not share the common schema");
    }
  }
  return util::Status::Ok();
}

std::string DescribeExit(const util::ExitStatus& ws) {
  if (ws.signaled) {
    return "killed by signal " + std::to_string(ws.term_signal);
  }
  return "exited with code " + std::to_string(ws.exit_code);
}

/// Forks one worker. The child builds its shard, frames its final Status
/// back over the pipe, and exits 0/1; with `hang` it sleeps forever
/// instead (fault injection — the parent's timeout must reap it).
util::Result<util::Subprocess> LaunchWorker(
    const core::MultiEmConfig& worker_config,
    const std::vector<table::Table>& tables,
    const ShardAssignment& assignment, const std::string& shard_dir,
    bool hang) {
  return util::Subprocess::Fork([&worker_config, &tables, &assignment,
                                 &shard_dir, hang](int fd) -> int {
    if (hang) {
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
    }
    std::unique_ptr<util::ThreadPool> pool;
    if (worker_config.num_threads != 1) {
      pool = std::make_unique<util::ThreadPool>(worker_config.num_threads);
    }
    ShardWorkerOptions opts;
    opts.shard_dir = shard_dir;
    opts.pool = pool.get();
    util::Status built =
        RunShardWorker(worker_config, tables, assignment, opts);
    std::string message = built.ToString();
    // Best-effort: the exit code already carries success/failure; the
    // message just adds detail for the coordinator's error report.
    (void)util::Subprocess::WriteMessage(fd, message.data(), message.size());
    return built.ok() ? 0 : 1;
  });
}

std::vector<uint64_t> ToU64(const std::vector<size_t>& v) {
  return std::vector<uint64_t>(v.begin(), v.end());
}

}  // namespace

util::Result<DistributedBuildResult> Coordinator::Build(
    const std::vector<table::Table>& tables) const {
  util::WallTimer total_timer;
  MULTIEM_RETURN_IF_ERROR(config_.ValidateValues());
  MULTIEM_RETURN_IF_ERROR(ValidateTables(tables));
  if (options_.num_workers == 0) {
    return util::Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options_.work_dir.empty()) {
    return util::Status::InvalidArgument("work_dir must be set");
  }

  core::MergePlan plan = core::MergePlan::Build(tables.size(), config_.seed);
  std::vector<ShardAssignment> assignments =
      PartitionPlan(plan, options_.num_workers);
  const size_t workers = assignments.size();

  DistributedBuildResult result;
  result.distrib.workers = workers;
  for (const ShardAssignment& a : assignments) {
    result.distrib.frontier_nodes += a.roots.size();
  }

  std::error_code ec;
  std::filesystem::create_directories(options_.work_dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create work directory '" +
                                  options_.work_dir + "': " + ec.message());
  }
  std::vector<std::string> shard_dirs;
  std::vector<bool> reuse_candidate(workers, false);
  for (size_t w = 0; w < workers; ++w) {
    shard_dirs.push_back(options_.work_dir + "/" + ShardDirName(w));
    if (options_.reuse_shards &&
        std::filesystem::exists(shard_dirs.back() + "/" +
                                ShardManifestName())) {
      // The manifest is written last, so its presence certifies a complete
      // shard from an earlier run. Adopt it tentatively; it is validated
      // against this run's plan + selection below before anything trusts it.
      reuse_candidate[w] = true;
    } else {
      // A stale partial shard from an earlier run would otherwise pass the
      // completion check below with the wrong contents.
      std::filesystem::remove_all(shard_dirs.back(), ec);
    }
  }

  core::MultiEmConfig worker_config = config_;
  worker_config.num_threads = options_.worker_threads;

  // 1. Fork every worker before any ThreadPool exists in this process
  // (util/subprocess.h: a child forked from a multithreaded parent can
  // inherit locked allocator state). Reuse candidates do not fork at all —
  // their shard is already on disk.
  util::WallTimer worker_timer;
  std::vector<std::optional<util::Subprocess>> procs(workers);
  std::vector<size_t> attempts(workers, 1);
  for (size_t w = 0; w < workers; ++w) {
    if (reuse_candidate[w]) continue;
    auto proc = LaunchWorker(worker_config, tables, assignments[w],
                             shard_dirs[w], options_.hang_worker == w);
    if (!proc.ok()) return proc.status();
    procs[w] = std::move(*proc);
  }
  if (options_.kill_worker < workers &&
      procs[options_.kill_worker].has_value()) {
    (void)procs[options_.kill_worker]->Kill(kSigKill);
  }

  // 2. Overlap the workers with the coordinator's own deterministic
  // replay of the representation decisions (no pool yet — see above).
  auto fitted = FitRepresentation(config_, tables, /*pool=*/nullptr);
  if (!fitted.ok()) return fitted.status();

  // A shard is only adopted/accepted when the worker reached the exact
  // deterministic decisions this process just replayed, and every merge
  // output its manifest promises is actually present.
  auto check_shard = [&](size_t w, const ShardArtifact& shard) -> util::Status {
    if (shard.total_sources != tables.size() || shard.seed != config_.seed ||
        shard.dim != fitted->encoder->dim() ||
        shard.covered_sources != ToU64(assignments[w].sources) ||
        shard.roots != ToU64(assignments[w].roots)) {
      return util::Status::Internal(
          "shard " + std::to_string(w) +
          " does not match its assignment (stale or foreign artifact?)");
    }
    if (shard.selected_columns != ToU64(fitted->selection.selected_columns)) {
      return util::Status::Internal(
          "worker " + std::to_string(w) +
          " disagrees with the coordinator on attribute selection — the "
          "fit is expected to be deterministic across processes");
    }
    for (size_t root : assignments[w].roots) {
      if (!plan.node(root).is_leaf() &&
          !std::filesystem::exists(shard_dirs[w] + "/" +
                                   MergeOutputName(root))) {
        return util::Status::Internal(
            "shard " + std::to_string(w) + " is missing merge output '" +
            MergeOutputName(root) + "'");
      }
    }
    return util::Status::Ok();
  };

  // Validate the reuse candidates now that the fit is known. Still pre-pool:
  // an invalid candidate is deleted and forked like any other worker, and
  // forking must stay single-threaded.
  std::vector<ShardArtifact> shards(workers);
  std::vector<bool> have_shard(workers, false);
  util::ArtifactOpenOptions serial_open = options_.shard_open;
  serial_open.verify_pool = nullptr;
  for (size_t w = 0; w < workers; ++w) {
    if (!reuse_candidate[w]) continue;
    util::Status usable;
    auto shard = OpenShardArtifact(shard_dirs[w], serial_open);
    if (shard.ok()) {
      usable = check_shard(w, *shard);
    } else {
      usable = shard.status();
    }
    if (usable.ok()) {
      shards[w] = std::move(*shard);
      have_shard[w] = true;
      ++result.distrib.shards_reused;
      MULTIEM_LOG(kInfo) << "reusing completed shard " << w << " from '"
                         << shard_dirs[w] << "'";
      continue;
    }
    MULTIEM_LOG(kWarning) << "cannot reuse shard " << w << ", rebuilding: "
                          << usable.ToString();
    reuse_candidate[w] = false;
    std::filesystem::remove_all(shard_dirs[w], ec);
    auto proc = LaunchWorker(worker_config, tables, assignments[w],
                             shard_dirs[w], /*hang=*/false);
    if (!proc.ok()) return proc.status();
    procs[w] = std::move(*proc);
  }

  // 3. Reap each forked worker; retry crashed/hung/incomplete ones under
  // the policy's deterministic backoff. Any terminal failure returns
  // through here, and the Subprocess destructors SIGKILL and reap whatever
  // is still running — no zombies, no hangs.
  MULTIEM_FAULT_POINT("coordinator.reap");
  util::RetryPolicy base_policy = options_.worker_retry;
  base_policy.max_attempts = options_.max_retries + 1;
  for (size_t w = 0; w < workers; ++w) {
    if (!procs[w].has_value()) continue;  // reused shard, nothing to reap
    util::RetryPolicy policy = base_policy;
    policy.jitter_seed ^= static_cast<uint64_t>(w);
    util::Status last_failure;
    size_t made = 1;
    util::Status reaped = util::RetryWithBackoff(
        policy,
        [&](size_t attempt) -> util::Status {
          if (attempt > 1) {
            MULTIEM_LOG(kWarning)
                << "retrying worker " << w << " (attempt " << attempt
                << "): " << last_failure.ToString();
            ++result.distrib.retries;
            std::filesystem::remove_all(shard_dirs[w], ec);
            // Fault injection applies to first attempts only: the retry is
            // the recovery path under test.
            auto proc = LaunchWorker(worker_config, tables, assignments[w],
                                     shard_dirs[w], /*hang=*/false);
            if (!proc.ok()) return last_failure = proc.status();
            procs[w] = std::move(*proc);
          }
          auto ws = procs[w]->Wait(options_.worker_timeout_ms);
          if (!ws.ok()) {
            if (ws.status().code() != util::StatusCode::kResourceExhausted) {
              return last_failure = ws.status();
            }
            (void)procs[w]->Kill(kSigKill);
            (void)procs[w]->Wait(/*timeout_ms=*/-1);
            return last_failure = util::Status::ResourceExhausted(
                       "worker " + std::to_string(w) + " exceeded its " +
                       std::to_string(options_.worker_timeout_ms) +
                       " ms deadline");
          }
          if (!ws->ok()) {
            std::string detail;
            auto message = procs[w]->ReadMessage(/*timeout_ms=*/200);
            if (message.ok()) {
              detail = ": " + std::string(message->begin(), message->end());
            }
            return last_failure =
                       util::Status::Internal("worker " + std::to_string(w) +
                                              " " + DescribeExit(*ws) + detail);
          }
          if (!std::filesystem::exists(shard_dirs[w] + "/" +
                                       ShardManifestName())) {
            return last_failure = util::Status::Internal(
                       "worker " + std::to_string(w) +
                       " exited cleanly but left no shard manifest");
          }
          return util::Status::Ok();
        },
        /*cancelled=*/nullptr, &made);
    attempts[w] = made;
    if (!reaped.ok()) {
      return util::Status(reaped.code(), "distributed build failed after " +
                                             std::to_string(made) +
                                             " attempt(s): " +
                                             reaped.message());
    }
  }
  result.distrib.worker_seconds = worker_timer.ElapsedSeconds();

  // Every worker finished (or was reused); a crash injected here must find
  // all shards adoptable on the next Build() over the same work dir.
  MULTIEM_FAULT_POINT("coordinator.assemble");

  // Parallelism is safe from here on: every fork already happened.
  std::unique_ptr<util::ThreadPool> pool;
  if (config_.num_threads != 1) {
    pool = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
  util::ArtifactOpenOptions open = options_.shard_open;
  if (open.verify_pool == nullptr) open.verify_pool = pool.get();

  // 4. Open the freshly built shards and cross-check that every worker
  // reached the same deterministic decisions this process did (reused
  // shards already passed the identical checks above).
  for (size_t w = 0; w < workers; ++w) {
    if (have_shard[w]) continue;
    auto shard = OpenShardArtifact(shard_dirs[w], open);
    if (!shard.ok()) {
      return util::Status::Internal("cannot open shard " + std::to_string(w) +
                                    ": " + shard.status().ToString());
    }
    MULTIEM_RETURN_IF_ERROR(check_shard(w, *shard));
    shards[w] = std::move(*shard);
    have_shard[w] = true;
  }

  // Assemble the global embedding store from the shard base matrices
  // (zero-copy views into the mapped manifests when mapping succeeded).
  core::EntityEmbeddingStore store;
  {
    constexpr size_t kUnset = static_cast<size_t>(-1);
    std::vector<std::pair<size_t, size_t>> where(tables.size(),
                                                 {kUnset, kUnset});
    for (size_t w = 0; w < workers; ++w) {
      for (size_t i = 0; i < shards[w].covered_sources.size(); ++i) {
        size_t s = static_cast<size_t>(shards[w].covered_sources[i]);
        if (s >= tables.size() || where[s].first != kUnset) {
          return util::Status::Internal(
              "source " + std::to_string(s) +
              " is covered by more than one shard");
        }
        where[s] = {w, i};
      }
    }
    for (size_t s = 0; s < tables.size(); ++s) {
      auto [w, i] = where[s];
      if (w == kUnset) {
        return util::Status::Internal("source " + std::to_string(s) +
                                      " is covered by no shard");
      }
      if (shards[w].bases[i].num_rows() != tables[s].num_rows()) {
        return util::Status::Internal(
            "shard " + std::to_string(w) + " holds " +
            std::to_string(shards[w].bases[i].num_rows()) +
            " embeddings for source " + std::to_string(s) + ", expected " +
            std::to_string(tables[s].num_rows()));
      }
      store.AddSource(std::move(shards[w].bases[i]));
    }
  }

  // 5. Seed the plan slots — resident handles for frontier leaves, spill
  // handles (not file-owning; the shard dir outlives the build) for worker
  // merge roots — and execute the remaining top of the plan.
  util::WallTimer merge_timer;
  auto factory =
      core::IndexFactories().Create(config_.effective_index_name(), config_);
  if (!factory.ok()) return factory.status();
  std::shared_ptr<const ann::VectorIndexFactory> index_factory =
      std::move(*factory);

  std::vector<core::MergeSource> slots(plan.num_nodes());
  for (size_t w = 0; w < workers; ++w) {
    for (size_t root : assignments[w].roots) {
      if (plan.node(root).is_leaf()) {
        slots[root] = core::MergeSource::FromTable(core::MergeTable::FromSource(
            static_cast<uint32_t>(root), store.source(root)));
      } else {
        slots[root] = core::MergeSource::FromSpill(
            shard_dirs[w] + "/" + MergeOutputName(root), options_.shard_open,
            /*owns_file=*/false);
      }
    }
  }
  core::TwoTableMerger merger(config_, &store, index_factory.get());
  core::MergeExecOptions top;
  top.reopen = options_.shard_open;
  core::MergeExecStats exec;
  MULTIEM_RETURN_IF_ERROR(core::ExecuteMergeSubtree(
      plan, plan.root(), slots, merger, top, pool.get(), &exec));
  auto integrated = slots[plan.root()].Acquire();
  if (!integrated.ok()) return integrated.status();
  result.distrib.merge_seconds = merge_timer.ElapsedSeconds();

  // Fold the workers' per-node counters and the coordinator's own into the
  // standard per-level shape; a full plan execution reproduces the
  // single-process HierarchicalMergeStats exactly.
  std::vector<core::MergeNodeStats> all_nodes;
  for (size_t w = 0; w < workers; ++w) {
    for (core::MergeNodeStats node : shards[w].node_stats) {
      // Surface what the worker's subtree actually cost: the fork-retry
      // count of the worker that produced it (1 for a reused shard — this
      // run spent nothing on it).
      node.attempts = std::max(node.attempts, attempts[w]);
      all_nodes.push_back(node);
    }
  }
  all_nodes.insert(all_nodes.end(), exec.nodes.begin(), exec.nodes.end());
  result.merge_stats.levels = core::AggregateLevelStats(plan, all_nodes);
  for (const core::MergeNodeStats& node : all_nodes) {
    result.merge_stats.total_mutual_pairs += node.mutual_pairs;
  }
  result.selection = fitted->selection;

  // 6. Prune and (optionally) assemble the serving session, exactly as the
  // single-process pipeline does.
  auto pruner = core::Pruners().Create(config_.pruner_name, config_);
  if (!pruner.ok()) return pruner.status();
  core::PruneContext prune_ctx;
  prune_ctx.store = &store;
  prune_ctx.pool = pool.get();
  result.tuples =
      (*pruner)->Prune(*integrated, prune_ctx, &result.prune_stats);

  if (options_.build_matcher) {
    std::vector<std::string> schema_names = tables[0].schema().names();
    std::vector<std::string> source_names;
    source_names.reserve(tables.size());
    for (const table::Table& t : tables) source_names.push_back(t.name());
    auto matcher = core::Matcher::Assemble(
        config_, std::move(schema_names), result.selection,
        std::move(source_names), std::move(store), std::move(*integrated),
        fitted->encoder, index_factory, /*index=*/nullptr, pool.get());
    if (!matcher.ok()) return matcher.status();
    result.matcher = std::make_shared<core::Matcher>(std::move(*matcher));
  }

  result.distrib.total_seconds = total_timer.ElapsedSeconds();
  MULTIEM_LOG(kDebug) << "distributed build finished: " << workers
                      << " workers, " << result.tuples.size() << " tuples, "
                      << result.distrib.retries << " retries, "
                      << result.distrib.shards_reused << " shards reused";
  return result;
}

}  // namespace multiem::distrib
