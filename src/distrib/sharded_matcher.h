/// \file sharded_matcher.h
/// Shard-routed serving over a finished build: the integrated entity table
/// is cut into contiguous item ranges, each range gets its own ANN index,
/// and a query fans out to every shard with the per-shard top-k merged
/// k-way by ascending (distance, item id) — the same total order a single
/// union index sorts by, so under an exact index the answers are *equal* to
/// Matcher::MatchRecords over one global index, not merely similar.
///
/// This is the serving half of the distrib subsystem: a deployment can
/// build per-shard indexes in parallel (or on different machines), route
/// every query to all shards, and still serve the single-index answer.

#ifndef MULTIEM_DISTRIB_SHARDED_MATCHER_H_
#define MULTIEM_DISTRIB_SHARDED_MATCHER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ann/index.h"
#include "core/matcher.h"
#include "table/table.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace multiem::distrib {

/// A scatter-gather serving session over one pinned Matcher epoch.
/// Move-only; the underlying epoch (entity table, encoder, selection) is
/// pinned through a core::Matcher::Snapshot, so the source Matcher may be
/// destroyed or keep ingesting after Build without affecting answers here.
class ShardedMatcher {
 public:
  /// Cuts the matcher's current epoch into `num_shards` contiguous live-item
  /// ranges (clamped to the live item count) and builds one index per range
  /// with the factory registered under the matcher's config
  /// (`index_name`/`use_exact_knn`; builder-injected factory instances are
  /// not visible here). `pool` parallelizes the per-shard index builds.
  static util::Result<ShardedMatcher> Build(const core::Matcher& matcher,
                                            size_t num_shards,
                                            util::ThreadPool* pool = nullptr);

  ShardedMatcher(ShardedMatcher&&) = default;
  ShardedMatcher& operator=(ShardedMatcher&&) = default;
  ShardedMatcher(const ShardedMatcher&) = delete;
  ShardedMatcher& operator=(const ShardedMatcher&) = delete;

  /// Serves every row of `records` (session schema required): serialize
  /// with the run's selected attributes, encode with the fitted encoder,
  /// search every shard, and k-way merge to the global top-k by ascending
  /// (distance, item). Item ids resolve against the pinned epoch
  /// (`snapshot()`). `pool` fans the query rows out.
  util::Result<std::vector<std::vector<core::RecordMatch>>> MatchRecords(
      const table::Table& records, size_t k,
      util::ThreadPool* pool = nullptr) const;

  size_t num_shards() const { return indexes_.size(); }
  /// Live items served across all shards.
  size_t num_items() const;
  /// Global item ids of shard `sh`, ascending (tests, diagnostics).
  const std::vector<uint32_t>& shard_items(size_t sh) const {
    return items_[sh];
  }

  /// The pinned epoch item ids resolve against.
  const core::Matcher::Snapshot& snapshot() const { return snapshot_; }

 private:
  ShardedMatcher(core::Matcher::Snapshot snapshot,
                 const core::Matcher& matcher)
      : snapshot_(std::move(snapshot)),
        config_(matcher.config()),
        selection_(matcher.selection()),
        schema_names_(matcher.schema_names()),
        encoder_(&matcher.encoder()) {}

  core::Matcher::Snapshot snapshot_;
  core::MultiEmConfig config_;
  core::AttributeSelection selection_;
  std::vector<std::string> schema_names_;
  /// Owned by the Matcher's Fixed state, which `snapshot_` keeps alive.
  const embed::TextEncoder* encoder_;
  std::vector<std::unique_ptr<ann::VectorIndex>> indexes_;
  /// Per shard: local slot -> global item id (ascending).
  std::vector<std::vector<uint32_t>> items_;
};

}  // namespace multiem::distrib

#endif  // MULTIEM_DISTRIB_SHARDED_MATCHER_H_
