/// \file shard_worker.h
/// The per-process build unit of the multi-process pipeline
/// (src/distrib/coordinator.h): one worker owns a contiguous slice of the
/// merge plan's frontier, runs embed -> select -> merge for the source
/// tables under that slice, and leaves a *shard artifact* on disk for the
/// coordinator to pick up:
///
///   <shard_dir>/merge_<node>.mem   one MEMMERGT table per assigned
///                                  non-leaf frontier root
///   <shard_dir>/shard.mem          the MEMSHARD manifest, written LAST
///                                  (atomically) as the completion marker
///
/// Correctness rests on two facts. First, every corpus-dependent decision —
/// the encoder fit, attribute selection, the refit on the selected columns
/// — is a deterministic function of (tables, config), so each worker
/// replays it identically on the full corpus instead of coordinating
/// (FitRepresentation). Second, each internal node of the MergePlan is a
/// pure function of its two children (core/merge_plan.h), so subtrees built
/// in different processes compose into bitwise-identical integrated tables.
///
/// Components are resolved from core::Registry by the config's names;
/// builder-injected component instances cannot cross a process boundary and
/// are not supported here.

#ifndef MULTIEM_DISTRIB_SHARD_WORKER_H_
#define MULTIEM_DISTRIB_SHARD_WORKER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/attribute_selector.h"
#include "core/config.h"
#include "core/merge_plan.h"
#include "embed/embedding.h"
#include "embed/text_encoder.h"
#include "table/table.h"
#include "util/io.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace multiem::distrib {

/// Magic + version of the MEMSHARD shard manifest (docs/FORMATS.md).
/// v2 widened the stats rows from 4 to 5 u64 columns, adding the per-node
/// execution attempt count (MergeNodeStats::attempts); v1 manifests still
/// open, with attempts defaulting to 1.
inline constexpr uint64_t kShardMagic = util::ArtifactMagic("MEMSHARD");
inline constexpr uint32_t kShardVersion = 2;

/// "shard_<worker>" — the shard directory name under the coordinator's
/// work dir.
std::string ShardDirName(size_t worker);

/// "shard.mem" — the manifest file inside a shard directory.
std::string ShardManifestName();

/// "merge_<node>.mem" — a spilled merge output keyed by plan node id
/// (MergeExecOptions::name_by_node).
std::string MergeOutputName(size_t node);

/// The slice of the merge plan one worker builds.
struct ShardAssignment {
  size_t worker = 0;
  /// Frontier node ids this worker materializes, in plan order. A leaf
  /// root contributes only its base embeddings (nothing to merge).
  std::vector<size_t> roots;
  /// Union of the roots' subtree leaves == the source tables this worker
  /// encodes, ascending. Derived from `roots`; carried for convenience.
  std::vector<size_t> sources;
};

/// Cuts the plan's frontier into `num_workers` contiguous chunks. The
/// frontier is the deepest level whose live-node count still is >=
/// min(num_workers, num_leaves), so every worker gets at least one node and
/// every source lands in exactly one shard. Returns one assignment per
/// effective worker (may be fewer than requested).
std::vector<ShardAssignment> PartitionPlan(const core::MergePlan& plan,
                                           size_t num_workers);

/// The deterministic representation state every process replays
/// identically: the encoder after the full-schema corpus fit, attribute
/// selection, and the refit on the selected-column corpus.
struct FittedRepresentation {
  std::shared_ptr<embed::TextEncoder> encoder;
  core::AttributeSelection selection;
};

/// Resolves the encoder by config name and replays fit -> selection ->
/// refit over `tables` (the representation-phase prefix of
/// MultiEmPipeline::Run). Deterministic given (tables, config).
util::Result<FittedRepresentation> FitRepresentation(
    const core::MultiEmConfig& config,
    const std::vector<table::Table>& tables, util::ThreadPool* pool);

struct ShardWorkerOptions {
  /// Output directory (created if missing). Also receives the worker's
  /// intermediate spill files, which are deleted as they are consumed.
  std::string shard_dir;
  /// Parallelism inside this worker. Keep null (serial) when the build
  /// must be bitwise-comparable across worker counts: parallel HNSW
  /// construction is not thread-count invariant.
  util::ThreadPool* pool = nullptr;
};

/// Runs one worker's slice end to end and writes the shard artifact.
/// Typically called inside a forked child (util::Subprocess), but runs the
/// same in-process (tests).
util::Status RunShardWorker(const core::MultiEmConfig& config,
                            const std::vector<table::Table>& tables,
                            const ShardAssignment& assignment,
                            const ShardWorkerOptions& options);

/// A parsed shard.mem manifest plus the shard's base matrices. `backing`
/// pins the underlying bytes; with a mapped open the matrices are zero-copy
/// views over the file pages.
struct ShardArtifact {
  uint64_t total_sources = 0;
  uint64_t seed = 0;
  uint64_t dim = 0;
  std::vector<uint64_t> covered_sources;
  std::vector<uint64_t> roots;
  std::vector<uint64_t> selected_columns;
  /// Per-merge-node counters of the worker's subtree executions.
  std::vector<core::MergeNodeStats> node_stats;
  /// Base embedding matrices, parallel to `covered_sources`.
  std::vector<embed::EmbeddingMatrix> bases;
  std::shared_ptr<const void> backing;
};

/// Opens `<shard_dir>/shard.mem`. NotFound when the worker never completed
/// (the manifest is written last).
util::Result<ShardArtifact> OpenShardArtifact(
    const std::string& shard_dir,
    const util::ArtifactOpenOptions& options = {});

}  // namespace multiem::distrib

#endif  // MULTIEM_DISTRIB_SHARD_WORKER_H_
