#include "baselines/threshold_classifier.h"

#include <algorithm>

#include "embed/embedding.h"

namespace multiem::baselines {

void ThresholdClassifierMatcher::Train(const BaselineContext& ctx,
                                       const eval::LabeledSplit& split) {
  // Score every labeled pair with the encoder similarity.
  struct Scored {
    double score;
    bool is_match;
  };
  auto score_all = [&](const std::vector<eval::LabeledPair>& pairs) {
    std::vector<Scored> out;
    out.reserve(pairs.size());
    for (const eval::LabeledPair& lp : pairs) {
      double s = embed::CosineSimilarity(ctx.Embedding(lp.pair.a),
                                         ctx.Embedding(lp.pair.b));
      out.push_back({s, lp.is_match});
    }
    return out;
  };
  std::vector<Scored> train = score_all(split.train);
  std::vector<Scored> valid = score_all(split.valid);
  if (valid.empty()) valid = train;
  if (valid.empty()) return;

  // Candidate thresholds = observed train scores (plus the fallback);
  // pick the one with the best F1 on the validation scores.
  std::vector<double> candidates;
  candidates.reserve(train.size() + 1);
  for (const Scored& s : train) candidates.push_back(s.score);
  candidates.push_back(config_.threshold);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  double best_f1 = -1.0;
  double best_threshold = config_.threshold;
  for (double t : candidates) {
    size_t tp = 0;
    size_t fp = 0;
    size_t fn = 0;
    for (const Scored& s : valid) {
      bool predicted = s.score >= t;
      if (predicted && s.is_match) ++tp;
      if (predicted && !s.is_match) ++fp;
      if (!predicted && s.is_match) ++fn;
    }
    double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0;
    double recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0;
    double f1 = precision + recall > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0;
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = t;
    }
  }
  config_.threshold = best_threshold;
}

std::vector<eval::Pair> ThresholdClassifierMatcher::Match(
    const BaselineContext& ctx, std::span<const table::EntityId> left,
    std::span<const table::EntityId> right) const {
  std::vector<eval::Pair> out;
  if (left.empty() || right.empty()) return out;

  // Exact candidate generation: score every (left, right) pair and keep the
  // top-k per left entity — the deliberately quadratic path (see header).
  std::vector<std::pair<float, size_t>> scores(right.size());
  for (table::EntityId l : left) {
    std::span<const float> lv = ctx.Embedding(l);
    for (size_t j = 0; j < right.size(); ++j) {
      float sim = 0.0f;
      for (size_t rep = 0; rep < std::max<size_t>(1, config_.score_repeats);
           ++rep) {
        sim = embed::CosineSimilarity(lv, ctx.Embedding(right[j]));
      }
      scores[j] = {sim, j};
    }
    size_t k = std::min(config_.candidate_k, scores.size());
    std::partial_sort(scores.begin(), scores.begin() + k, scores.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (size_t c = 0; c < k; ++c) {
      if (scores[c].first >= config_.threshold) {
        out.push_back(eval::MakePair(l, right[scores[c].second]));
      }
    }
  }
  return out;
}

}  // namespace multiem::baselines
