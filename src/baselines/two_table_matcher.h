#ifndef MULTIEM_BASELINES_TWO_TABLE_MATCHER_H_
#define MULTIEM_BASELINES_TWO_TABLE_MATCHER_H_

#include <span>
#include <string>
#include <vector>

#include "baselines/context.h"
#include "eval/tuples.h"

namespace multiem::baselines {

/// Interface of a two-table entity matcher: given two entity lists (each
/// drawn from the baseline context), emit matched pairs. The pairwise and
/// chain extensions (Figure 2(a)/(c) of the paper) lift any implementation
/// of this interface to the multi-table setting.
class TwoTableMatcher {
 public:
  virtual ~TwoTableMatcher() = default;

  /// Display name used by the benches ("Ditto (pw)" etc. come from this
  /// plus the extension suffix).
  virtual std::string name() const = 0;

  /// Matches `left` against `right`; returns canonical pairs.
  virtual std::vector<eval::Pair> Match(
      const BaselineContext& ctx, std::span<const table::EntityId> left,
      std::span<const table::EntityId> right) const = 0;
};

}  // namespace multiem::baselines

#endif  // MULTIEM_BASELINES_TWO_TABLE_MATCHER_H_
