#include "baselines/almser_lite.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "baselines/threshold_classifier.h"
#include "embed/embedding.h"
#include "eval/pairs_to_tuples.h"

namespace multiem::baselines {

namespace {

struct ScoredPair {
  eval::Pair pair;
  double score;
};

}  // namespace

std::vector<eval::Pair> AlmserLiteMatcher::RunPairs(
    const BaselineContext& ctx, const eval::LabeledSplit& split) const {
  // Step 1: learn the global threshold from the labeled seed (reuse the
  // threshold learner).
  ThresholdClassifierConfig tc;
  tc.candidate_k = config_.candidate_k;
  ThresholdClassifierMatcher learner(tc);
  learner.Train(ctx, split);
  double threshold = learner.threshold();

  // Step 2: score candidates across every source pair.
  std::vector<ScoredPair> candidates;
  for (uint32_t i = 0; i < ctx.num_sources(); ++i) {
    std::vector<table::EntityId> left = ctx.SourceEntities(i);
    for (uint32_t j = i + 1; j < ctx.num_sources(); ++j) {
      std::vector<table::EntityId> right = ctx.SourceEntities(j);
      std::vector<std::pair<float, size_t>> sims(right.size());
      for (table::EntityId l : left) {
        std::span<const float> lv = ctx.Embedding(l);
        for (size_t r = 0; r < right.size(); ++r) {
          sims[r] = {embed::CosineSimilarity(lv, ctx.Embedding(right[r])), r};
        }
        size_t k = std::min(config_.candidate_k, sims.size());
        std::partial_sort(
            sims.begin(), sims.begin() + k, sims.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
        for (size_t c = 0; c < k; ++c) {
          // Keep anything near or above threshold; the graph stage decides.
          if (sims[c].first >= threshold - config_.margin) {
            candidates.push_back(
                {eval::MakePair(l, right[sims[c].second]), sims[c].first});
          }
        }
      }
    }
  }

  // Step 3: graph boosting. Build adjacency over the *confident* pairs and
  // use common-neighbor support to promote/demote the borderline ones.
  std::unordered_map<table::EntityId, std::vector<table::EntityId>> adjacency;
  for (const ScoredPair& sp : candidates) {
    if (sp.score >= threshold) {
      adjacency[sp.pair.a].push_back(sp.pair.b);
      adjacency[sp.pair.b].push_back(sp.pair.a);
    }
  }
  auto support = [&](const eval::Pair& p) {
    auto it_a = adjacency.find(p.a);
    auto it_b = adjacency.find(p.b);
    if (it_a == adjacency.end() || it_b == adjacency.end()) return size_t{0};
    std::unordered_set<table::EntityId> neighbors_a(it_a->second.begin(),
                                                    it_a->second.end());
    size_t common = 0;
    for (table::EntityId n : it_b->second) {
      if (n != p.a && n != p.b && neighbors_a.count(n) > 0) ++common;
    }
    return common;
  };

  std::vector<eval::Pair> out;
  for (const ScoredPair& sp : candidates) {
    bool above = sp.score >= threshold;
    bool borderline_above = above && sp.score < threshold + config_.margin;
    if (above) {
      if (config_.demote_unsupported && borderline_above &&
          support(sp.pair) == 0) {
        continue;  // graph veto
      }
      out.push_back(sp.pair);
    } else if (support(sp.pair) >= config_.support_needed) {
      out.push_back(sp.pair);  // graph promotion
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

eval::TupleSet AlmserLiteMatcher::Run(const BaselineContext& ctx,
                                      const eval::LabeledSplit& split) const {
  return eval::PairsToTuples(RunPairs(ctx, split));
}

}  // namespace multiem::baselines
