#ifndef MULTIEM_BASELINES_MSCD_H_
#define MULTIEM_BASELINES_MSCD_H_

#include "baselines/context.h"
#include "cluster/agglomerative.h"
#include "cluster/affinity_propagation.h"
#include "eval/tuples.h"

namespace multiem::baselines {

/// MSCD-HAC (Saeedi et al., KEOD'21): multi-source entity clustering with
/// source-constrained hierarchical agglomerative clustering — at most one
/// record per source per cluster. O(n^2) memory / ~O(n^3) time by
/// construction, which is exactly why Tables V/VI show it timing out beyond
/// the smallest dataset.
struct MscdHacConfig {
  cluster::Linkage linkage = cluster::Linkage::kAverage;
  /// Stop merging above this cosine distance.
  float distance_threshold = 0.35f;
};

/// Runs MSCD-HAC over every entity of every source; clusters with >= 2
/// members become tuples.
eval::TupleSet MscdHac(const BaselineContext& ctx,
                       const MscdHacConfig& config = {});

/// MSCD-AP (Lerm et al., BTW'21): multi-source entity clustering by affinity
/// propagation. Same contract as MscdHac.
struct MscdApConfig {
  cluster::AffinityPropagationConfig ap;
};

eval::TupleSet MscdAp(const BaselineContext& ctx,
                      const MscdApConfig& config = {});

/// n^2-bytes estimate used by benches to reproduce the paper's "-" (memory
/// gate) and "\" (time gate) cells honestly instead of crashing the host.
size_t MscdQuadraticBytes(size_t num_entities);

}  // namespace multiem::baselines

#endif  // MULTIEM_BASELINES_MSCD_H_
