#include "baselines/autofj_lite.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "embed/embedding.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace multiem::baselines {

std::vector<eval::Pair> AutoFjLiteMatcher::Match(
    const BaselineContext& ctx, std::span<const table::EntityId> left,
    std::span<const table::EntityId> right) const {
  std::vector<eval::Pair> out;
  if (left.empty() || right.empty()) return out;

  // Null distribution of the string similarity over random pairs: the
  // auto-threshold estimates "how similar do *non*-matches look here".
  util::Rng rng(left.size() * 2654435761u + right.size());
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t samples = std::max<size_t>(16, config_.null_samples);
  for (size_t i = 0; i < samples; ++i) {
    table::EntityId a = left[rng.NextBounded(left.size())];
    table::EntityId b = right[rng.NextBounded(right.size())];
    double s = util::NgramJaccard(ctx.Text(a), ctx.Text(b), config_.ngram);
    sum += s;
    sum_sq += s * s;
  }
  double mean = sum / static_cast<double>(samples);
  double variance =
      std::max(0.0, sum_sq / static_cast<double>(samples) - mean * mean);
  double threshold = mean + config_.z_score * std::sqrt(variance);
  threshold = std::clamp(threshold, 0.35, 0.95);

  // Candidate generation via the embedding blocker, then n-gram scoring.
  struct Candidate {
    double score;
    size_t left_index;
    size_t right_index;
  };
  std::vector<Candidate> candidates;
  std::vector<std::pair<float, size_t>> sims(right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    std::span<const float> lv = ctx.Embedding(left[i]);
    for (size_t j = 0; j < right.size(); ++j) {
      sims[j] = {embed::CosineSimilarity(lv, ctx.Embedding(right[j])), j};
    }
    size_t k = std::min(config_.candidate_k, sims.size());
    std::partial_sort(
        sims.begin(), sims.begin() + k, sims.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    for (size_t c = 0; c < k; ++c) {
      size_t j = sims[c].second;
      double s = util::NgramJaccard(ctx.Text(left[i]), ctx.Text(right[j]),
                                    config_.ngram);
      if (s >= threshold) candidates.push_back({s, i, j});
    }
  }

  // Greedy one-to-one assignment, best score first (fuzzy-join semantics).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  std::unordered_set<size_t> used_left;
  std::unordered_set<size_t> used_right;
  for (const Candidate& c : candidates) {
    if (config_.one_to_one) {
      if (used_left.count(c.left_index) > 0 ||
          used_right.count(c.right_index) > 0) {
        continue;
      }
      used_left.insert(c.left_index);
      used_right.insert(c.right_index);
    }
    out.push_back(eval::MakePair(left[c.left_index], right[c.right_index]));
  }
  return out;
}

}  // namespace multiem::baselines
