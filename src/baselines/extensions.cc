#include "baselines/extensions.h"

#include <unordered_set>

#include "eval/pairs_to_tuples.h"

namespace multiem::baselines {

std::vector<eval::Pair> PairwiseMatchingPairs(const TwoTableMatcher& matcher,
                                              const BaselineContext& ctx) {
  std::vector<eval::Pair> all;
  for (uint32_t i = 0; i < ctx.num_sources(); ++i) {
    std::vector<table::EntityId> left = ctx.SourceEntities(i);
    for (uint32_t j = i + 1; j < ctx.num_sources(); ++j) {
      std::vector<table::EntityId> right = ctx.SourceEntities(j);
      std::vector<eval::Pair> pairs = matcher.Match(ctx, left, right);
      all.insert(all.end(), pairs.begin(), pairs.end());
    }
  }
  return all;
}

eval::TupleSet PairwiseMatching(const TwoTableMatcher& matcher,
                                const BaselineContext& ctx) {
  return eval::PairsToTuples(PairwiseMatchingPairs(matcher, ctx));
}

std::vector<eval::Pair> ChainMatchingPairs(const TwoTableMatcher& matcher,
                                           const BaselineContext& ctx) {
  std::vector<eval::Pair> all;
  if (ctx.num_sources() == 0) return all;
  std::vector<table::EntityId> base = ctx.SourceEntities(0);
  for (uint32_t s = 1; s < ctx.num_sources(); ++s) {
    std::vector<table::EntityId> next = ctx.SourceEntities(s);
    std::vector<eval::Pair> pairs = matcher.Match(ctx, base, next);

    // Entities of source s that matched are absorbed into existing base
    // entries; the unmatched ones are retained, growing the base (Lemma 2).
    std::unordered_set<table::EntityId> matched_right;
    for (const eval::Pair& p : pairs) {
      // The right-side member is whichever end lives in source s.
      matched_right.insert(p.a.source() == s ? p.a : p.b);
    }
    for (table::EntityId id : next) {
      if (matched_right.count(id) == 0) base.push_back(id);
    }
    all.insert(all.end(), pairs.begin(), pairs.end());
  }
  return all;
}

eval::TupleSet ChainMatching(const TwoTableMatcher& matcher,
                             const BaselineContext& ctx) {
  return eval::PairsToTuples(ChainMatchingPairs(matcher, ctx));
}

}  // namespace multiem::baselines
