#ifndef MULTIEM_BASELINES_EXTENSIONS_H_
#define MULTIEM_BASELINES_EXTENSIONS_H_

#include <vector>

#include "baselines/two_table_matcher.h"
#include "eval/tuples.h"

namespace multiem::baselines {

/// Figure 2(a): pairwise matching. Runs the two-table matcher on every
/// unordered pair of sources — S*(S-1)/2 invocations — collects all pairs,
/// and converts them to tuples with Algorithm 5 (eval::PairsToTuples).
eval::TupleSet PairwiseMatching(const TwoTableMatcher& matcher,
                                const BaselineContext& ctx);

/// Figure 2(c): chain matching. Starts from source 0 as the base, matches
/// each subsequent source against the (growing) base, and retains that
/// source's unmatched entities in the base — so the base table grows along
/// the chain exactly as the paper's complexity analysis assumes (Lemma 2).
eval::TupleSet ChainMatching(const TwoTableMatcher& matcher,
                             const BaselineContext& ctx);

/// Raw pair lists of the two extensions (for pair-level diagnostics).
std::vector<eval::Pair> PairwiseMatchingPairs(const TwoTableMatcher& matcher,
                                              const BaselineContext& ctx);
std::vector<eval::Pair> ChainMatchingPairs(const TwoTableMatcher& matcher,
                                           const BaselineContext& ctx);

}  // namespace multiem::baselines

#endif  // MULTIEM_BASELINES_EXTENSIONS_H_
