#include "baselines/context.h"

#include "embed/hashing_encoder.h"
#include "embed/serialize.h"

namespace multiem::baselines {

BaselineContext BaselineContext::Build(
    const std::vector<table::Table>& tables, size_t dim, uint64_t seed,
    util::ThreadPool* pool) {
  BaselineContext ctx;
  ctx.tables = &tables;

  embed::HashingEncoderConfig config;
  config.dim = dim;
  config.seed ^= seed;
  embed::HashingSentenceEncoder encoder(config);

  std::vector<std::string> corpus;
  for (const table::Table& t : tables) {
    std::vector<std::string> texts = embed::SerializeTable(t);
    corpus.insert(corpus.end(), texts.begin(), texts.end());
    ctx.texts.push_back(std::move(texts));
  }
  encoder.FitFrequencies(corpus);
  // Sources are encoded one after another; each EncodeBatch fans out as its
  // own task group on `pool`, so a shared pool (e.g. one bench pool reused
  // across baselines) sees no cross-talk between batches.
  for (const auto& texts : ctx.texts) {
    ctx.store.AddSource(encoder.EncodeBatch(texts, pool));
  }
  return ctx;
}

std::vector<table::EntityId> BaselineContext::SourceEntities(
    uint32_t source) const {
  std::vector<table::EntityId> out;
  out.reserve(texts[source].size());
  for (size_t r = 0; r < texts[source].size(); ++r) {
    out.push_back(table::EntityId(source, r));
  }
  return out;
}

size_t BaselineContext::NumEntities() const {
  size_t total = 0;
  for (const auto& t : texts) total += t.size();
  return total;
}

}  // namespace multiem::baselines
