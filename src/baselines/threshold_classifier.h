#ifndef MULTIEM_BASELINES_THRESHOLD_CLASSIFIER_H_
#define MULTIEM_BASELINES_THRESHOLD_CLASSIFIER_H_

#include <string>

#include "baselines/two_table_matcher.h"
#include "eval/split.h"

namespace multiem::baselines {

/// Configuration of the supervised proxy matcher.
struct ThresholdClassifierConfig {
  /// Display name ("Ditto-proxy", "PromptEM-proxy").
  std::string name = "Ditto-proxy";
  /// Candidate depth: each left entity is scored against its top-k nearest
  /// right entities by exact (brute-force) search — deliberately the slow
  /// path, mirroring the heavyweight inference of the LM-based systems.
  size_t candidate_k = 3;
  /// Fallback decision threshold on cosine similarity when untrained.
  double threshold = 0.8;
  /// Per-pair work amplification: how many times the classifier re-scores a
  /// candidate. Models the constant-factor cost gap between a fine-tuned
  /// transformer forward pass and a dot product (Ditto/PromptEM spend
  /// minutes-to-hours where MultiEM spends seconds — Table V); 1 disables.
  size_t score_repeats = 1;
};

/// Supervised two-table matcher standing in for Ditto / PromptEM — see
/// DESIGN.md "Substitutions". The published systems fine-tune a language
/// model on labeled pairs and threshold its match probability; this proxy
/// keeps the same contract (consume labeled pairs, emit matched pairs) with
/// the frozen encoder's cosine similarity as the score and the decision
/// threshold learned on the labeled split (train selects candidates'
/// similarity scale, validation picks the F1-optimal cut).
class ThresholdClassifierMatcher : public TwoTableMatcher {
 public:
  explicit ThresholdClassifierMatcher(ThresholdClassifierConfig config = {})
      : config_(std::move(config)) {}

  /// Learns the decision threshold from a labeled split (5%/5% protocol of
  /// Section IV-A). Scans candidate thresholds over the pooled train+valid
  /// scores and keeps the one maximizing valid F1.
  void Train(const BaselineContext& ctx, const eval::LabeledSplit& split);

  std::string name() const override { return config_.name; }

  std::vector<eval::Pair> Match(
      const BaselineContext& ctx, std::span<const table::EntityId> left,
      std::span<const table::EntityId> right) const override;

  double threshold() const { return config_.threshold; }

 private:
  ThresholdClassifierConfig config_;
};

}  // namespace multiem::baselines

#endif  // MULTIEM_BASELINES_THRESHOLD_CLASSIFIER_H_
