#include "baselines/mscd.h"

#include <unordered_map>

namespace multiem::baselines {

namespace {

// Flattens every source's entities into one matrix, keeping ids and sources.
struct Flattened {
  embed::EmbeddingMatrix points;
  std::vector<table::EntityId> ids;
  std::vector<uint32_t> sources;
};

Flattened Flatten(const BaselineContext& ctx) {
  Flattened out;
  size_t total = ctx.NumEntities();
  out.points = embed::EmbeddingMatrix(total, ctx.store.dim());
  out.ids.reserve(total);
  out.sources.reserve(total);
  size_t row = 0;
  for (uint32_t s = 0; s < ctx.num_sources(); ++s) {
    const embed::EmbeddingMatrix& source = ctx.store.source(s);
    for (size_t r = 0; r < source.num_rows(); ++r) {
      std::span<const float> v = source.Row(r);
      std::copy(v.begin(), v.end(), out.points.Row(row).begin());
      out.ids.push_back(table::EntityId(s, r));
      out.sources.push_back(s);
      ++row;
    }
  }
  return out;
}

eval::TupleSet LabelsToTuples(const std::vector<int>& labels,
                              const std::vector<table::EntityId>& ids) {
  std::unordered_map<int, eval::Tuple> clusters;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) continue;
    clusters[labels[i]].push_back(ids[i]);
  }
  std::vector<eval::Tuple> tuples;
  tuples.reserve(clusters.size());
  for (auto& [label, members] : clusters) tuples.push_back(std::move(members));
  return eval::TupleSet(std::move(tuples));
}

}  // namespace

eval::TupleSet MscdHac(const BaselineContext& ctx,
                       const MscdHacConfig& config) {
  Flattened flat = Flatten(ctx);
  cluster::AgglomerativeConfig hac;
  hac.linkage = config.linkage;
  hac.distance_threshold = config.distance_threshold;
  hac.metric = ann::Metric::kCosine;
  hac.source_constraint = true;
  cluster::AgglomerativeClustering clustering(hac);
  std::vector<int> labels = clustering.Cluster(flat.points, flat.sources);
  return LabelsToTuples(labels, flat.ids);
}

eval::TupleSet MscdAp(const BaselineContext& ctx, const MscdApConfig& config) {
  Flattened flat = Flatten(ctx);
  std::vector<int> labels = cluster::AffinityPropagation(flat.points, config.ap);
  return LabelsToTuples(labels, flat.ids);
}

size_t MscdQuadraticBytes(size_t num_entities) {
  return num_entities * num_entities * sizeof(float);
}

}  // namespace multiem::baselines
