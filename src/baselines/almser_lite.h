#ifndef MULTIEM_BASELINES_ALMSER_LITE_H_
#define MULTIEM_BASELINES_ALMSER_LITE_H_

#include "baselines/context.h"
#include "eval/split.h"
#include "eval/tuples.h"

namespace multiem::baselines {

/// Configuration of the ALMSER-GB-style multi-source matcher.
struct AlmserLiteConfig {
  /// Candidate depth per entity per source pair.
  size_t candidate_k = 3;
  /// Graph-boost margin: a candidate pair below the learned threshold is
  /// promoted when its graph support (common matched neighbors) is >=
  /// `support_needed` and its score is within `margin` of the threshold.
  double margin = 0.06;
  size_t support_needed = 1;
  /// Pairs above threshold but with zero support and score within `margin`
  /// of the threshold are demoted (the graph veto).
  bool demote_unsupported = true;
};

/// Multi-source matcher standing in for ALMSER-GB (Primpeli & Bizer,
/// ISWC'21) — see DESIGN.md "Substitutions". The published method actively
/// labels pairs and boosts a learner with features from the multi-source
/// similarity graph; this proxy keeps the pipeline shape: (1) learn a
/// decision threshold from the labeled seed, (2) score cross-source
/// candidates, (3) use the match-graph structure (common-neighbor support)
/// to promote/demote borderline pairs, (4) convert pairs to tuples with
/// Algorithm 5.
class AlmserLiteMatcher {
 public:
  explicit AlmserLiteMatcher(AlmserLiteConfig config = {})
      : config_(config) {}

  /// Runs end-to-end on all sources. `split` is the labeled seed (5%+5%).
  eval::TupleSet Run(const BaselineContext& ctx,
                     const eval::LabeledSplit& split) const;

  /// Raw boosted pair list (before tuple conversion).
  std::vector<eval::Pair> RunPairs(const BaselineContext& ctx,
                                   const eval::LabeledSplit& split) const;

 private:
  AlmserLiteConfig config_;
};

}  // namespace multiem::baselines

#endif  // MULTIEM_BASELINES_ALMSER_LITE_H_
