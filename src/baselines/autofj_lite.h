#ifndef MULTIEM_BASELINES_AUTOFJ_LITE_H_
#define MULTIEM_BASELINES_AUTOFJ_LITE_H_

#include <string>

#include "baselines/two_table_matcher.h"

namespace multiem::baselines {

/// Configuration of the AutoFuzzyJoin-style unsupervised matcher.
struct AutoFjLiteConfig {
  /// Character n-gram size of the string similarity.
  size_t ngram = 3;
  /// Candidate depth from the embedding blocker.
  size_t candidate_k = 5;
  /// Auto-tuned threshold = null-mean + z_score * null-stddev, where the
  /// null distribution is sampled from random (non-candidate) pairs; this is
  /// the precision-first spirit of AutoFJ's reference-set estimation.
  double z_score = 4.0;
  /// Sampled random pairs for the null distribution.
  size_t null_samples = 512;
  /// Enforce one-to-one greedy assignment like a fuzzy join.
  bool one_to_one = true;
};

/// Unsupervised fuzzy-join matcher standing in for AutoFuzzyJoin (Li et al.,
/// SIGMOD'21) — see DESIGN.md "Substitutions". Candidates come from an
/// embedding blocker; the join score is character-n-gram Jaccard similarity
/// of the serialized records; the join threshold is auto-tuned from a null
/// distribution of random pair scores so precision stays high without labels
/// (AutoFJ's core contract). Memory: the O(n^2-ish) candidate scoring makes
/// it the memory-fragile baseline of Tables V/VI, as published.
class AutoFjLiteMatcher : public TwoTableMatcher {
 public:
  explicit AutoFjLiteMatcher(AutoFjLiteConfig config = {})
      : config_(config) {}

  std::string name() const override { return "AutoFJ-lite"; }

  std::vector<eval::Pair> Match(
      const BaselineContext& ctx, std::span<const table::EntityId> left,
      std::span<const table::EntityId> right) const override;

 private:
  AutoFjLiteConfig config_;
};

}  // namespace multiem::baselines

#endif  // MULTIEM_BASELINES_AUTOFJ_LITE_H_
