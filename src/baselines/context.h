#ifndef MULTIEM_BASELINES_CONTEXT_H_
#define MULTIEM_BASELINES_CONTEXT_H_

#include <span>
#include <string>
#include <vector>

#include "core/merge_table.h"
#include "table/entity_id.h"
#include "table/table.h"
#include "util/thread_pool.h"

namespace multiem::baselines {

/// Shared inputs of every baseline: the source tables, their full-attribute
/// serializations, and embeddings from the same frozen sentence encoder the
/// MultiEM pipeline uses (but *without* the enhanced-representation module —
/// baselines represent entities with all attributes, like the published
/// systems do).
struct BaselineContext {
  const std::vector<table::Table>* tables = nullptr;
  core::EntityEmbeddingStore store;
  /// texts[source][row] = serialized entity.
  std::vector<std::vector<std::string>> texts;

  /// Builds serializations and embeddings for `tables` (kept alive by the
  /// caller for the context's lifetime).
  static BaselineContext Build(const std::vector<table::Table>& tables,
                               size_t dim = 384, uint64_t seed = 0,
                               util::ThreadPool* pool = nullptr);

  std::span<const float> Embedding(table::EntityId id) const {
    return store.Row(id);
  }
  const std::string& Text(table::EntityId id) const {
    return texts[id.source()][id.row()];
  }
  size_t num_sources() const { return texts.size(); }

  /// All entity ids of one source, in row order.
  std::vector<table::EntityId> SourceEntities(uint32_t source) const;

  /// Total number of entities across sources.
  size_t NumEntities() const;
};

}  // namespace multiem::baselines

#endif  // MULTIEM_BASELINES_CONTEXT_H_
