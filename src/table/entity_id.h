#ifndef MULTIEM_TABLE_ENTITY_ID_H_
#define MULTIEM_TABLE_ENTITY_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace multiem::table {

/// Globally unique identifier of one entity record across all input tables:
/// the source (table) index in the top 16 bits and the row index in the low
/// 48 bits. Value type; ordering is (source, row) lexicographic, which keeps
/// canonicalized tuples deterministic.
class EntityId {
 public:
  EntityId() : packed_(0) {}
  /// `source` must be < 2^16, `row` < 2^48.
  EntityId(uint32_t source, uint64_t row)
      : packed_((static_cast<uint64_t>(source) << kRowBits) |
                (row & kRowMask)) {}

  /// Index of the source table this entity came from.
  uint32_t source() const {
    return static_cast<uint32_t>(packed_ >> kRowBits);
  }

  /// Row index within the source table.
  uint64_t row() const { return packed_ & kRowMask; }

  /// The raw packed representation (useful as a hash-map key, and what the
  /// artifact manifest stores on disk — see docs/FORMATS.md).
  uint64_t packed() const { return packed_; }

  /// Rebuilds an id from its packed() word. Keeping the codec here, next to
  /// the bit split, means on-disk decoding can never drift from the layout.
  static EntityId FromPacked(uint64_t packed) {
    return EntityId(static_cast<uint32_t>(packed >> kRowBits),
                    packed & kRowMask);
  }

  /// "S<source>:R<row>", e.g. "S2:R17".
  std::string ToString() const {
    return "S" + std::to_string(source()) + ":R" + std::to_string(row());
  }

  friend bool operator==(EntityId a, EntityId b) {
    return a.packed_ == b.packed_;
  }
  friend bool operator!=(EntityId a, EntityId b) { return !(a == b); }
  friend bool operator<(EntityId a, EntityId b) {
    return a.packed_ < b.packed_;
  }

 private:
  static constexpr int kRowBits = 48;
  static constexpr uint64_t kRowMask = (uint64_t{1} << kRowBits) - 1;

  uint64_t packed_;
};

}  // namespace multiem::table

namespace std {
template <>
struct hash<multiem::table::EntityId> {
  size_t operator()(multiem::table::EntityId id) const noexcept {
    // splitmix-style avalanche of the packed value.
    uint64_t x = id.packed();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};
}  // namespace std

#endif  // MULTIEM_TABLE_ENTITY_ID_H_
