#include "table/table.h"

#include <algorithm>
#include <cstdlib>

namespace multiem::table {

util::Status Table::AppendRow(std::vector<std::string> cells) {
  if (cells.size() != schema_.num_attributes()) {
    return util::Status::InvalidArgument(
        "row width " + std::to_string(cells.size()) +
        " does not match schema width " +
        std::to_string(schema_.num_attributes()) + " in table '" + name_ +
        "'");
  }
  rows_.push_back(std::move(cells));
  return util::Status::Ok();
}

std::vector<std::string> Table::Column(size_t col) const {
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[col]);
  return out;
}

util::Status Table::SetColumn(size_t col, std::vector<std::string> values) {
  if (col >= schema_.num_attributes()) {
    return util::Status::OutOfRange("column index " + std::to_string(col));
  }
  if (values.size() != rows_.size()) {
    return util::Status::InvalidArgument(
        "column length " + std::to_string(values.size()) +
        " does not match row count " + std::to_string(rows_.size()));
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    rows_[i][col] = std::move(values[i]);
  }
  return util::Status::Ok();
}

util::Result<Table> Concat(const std::vector<Table>& tables) {
  if (tables.empty()) {
    return util::Status::InvalidArgument("Concat: no tables given");
  }
  const Schema& schema = tables[0].schema();
  for (const Table& t : tables) {
    if (t.schema() != schema) {
      return util::Status::InvalidArgument(
          "Concat: table '" + t.name() + "' has a different schema");
    }
  }
  Table out("concat", schema);
  size_t total = 0;
  for (const Table& t : tables) total += t.num_rows();
  out.Reserve(total);
  for (const Table& t : tables) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      out.AppendRow(t.row(r)).CheckOk();
    }
  }
  return out;
}

Table SampleRows(const Table& t, double ratio, util::Rng& rng) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  size_t count = static_cast<size_t>(ratio * static_cast<double>(t.num_rows()) + 0.999999);
  count = std::min(count, t.num_rows());
  std::vector<size_t> picked = rng.SampleWithoutReplacement(t.num_rows(), count);
  std::sort(picked.begin(), picked.end());
  Table out(t.name() + "_sample", t.schema());
  out.Reserve(picked.size());
  for (size_t idx : picked) out.AppendRow(t.row(idx)).CheckOk();
  return out;
}

Table ShuffleColumn(const Table& t, size_t col, util::Rng& rng) {
  if (col >= t.num_columns()) std::abort();
  Table out = t;
  std::vector<std::string> values = t.Column(col);
  rng.Shuffle(values);
  out.SetColumn(col, std::move(values)).CheckOk();
  return out;
}

Table ProjectColumns(const Table& t, const std::vector<size_t>& columns) {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (size_t c : columns) {
    if (c >= t.num_columns()) std::abort();
    names.push_back(t.schema().name(c));
  }
  Table out(t.name(), Schema(std::move(names)));
  out.Reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (size_t c : columns) cells.push_back(t.cell(r, c));
    out.AppendRow(std::move(cells)).CheckOk();
  }
  return out;
}

}  // namespace multiem::table
