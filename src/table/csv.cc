#include "table/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace multiem::table {

namespace {

// Splits CSV text into records of fields, honoring quotes.
util::Result<std::vector<std::vector<std::string>>> Tokenize(
    std::string_view text, char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current_record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    current_record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current_record));
    current_record.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == delim) {
      end_field();
      ++i;
    } else if (c == '\r') {
      ++i;  // swallow; \r\n handled by the \n branch
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field += c;
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return util::Status::InvalidArgument("CSV: unterminated quoted field");
  }
  // Trailing record without final newline.
  if (!field.empty() || !current_record.empty() || field_started) {
    end_record();
  }
  return records;
}

}  // namespace

util::Result<Table> ParseCsv(std::string_view text, const CsvOptions& options) {
  auto tokens = Tokenize(text, options.delimiter);
  if (!tokens.ok()) return tokens.status();
  const auto& records = *tokens;
  if (records.empty()) {
    return util::Status::InvalidArgument("CSV: empty input");
  }
  size_t first_data_row = 0;
  Schema schema;
  if (options.has_header) {
    schema = Schema(records[0]);
    first_data_row = 1;
  } else {
    std::vector<std::string> names;
    for (size_t i = 0; i < records[0].size(); ++i) {
      names.push_back("col" + std::to_string(i));
    }
    schema = Schema(std::move(names));
  }
  Table out("csv", schema);
  out.Reserve(records.size() - first_data_row);
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (records[r].size() != schema.num_attributes()) {
      return util::Status::InvalidArgument(
          "CSV: record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(schema.num_attributes()));
    }
    MULTIEM_RETURN_IF_ERROR(out.AppendRow(records[r]));
  }
  return out;
}

util::Result<Table> ReadCsvFile(const std::string& path,
                                const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto result = ParseCsv(buffer.str(), options);
  if (result.ok()) result->set_name(path);
  return result;
}

namespace {

void AppendCsvField(const std::string& field, char delim, std::string& out) {
  bool needs_quotes = field.find_first_of("\"\r\n") != std::string::npos ||
                      field.find(delim) != std::string::npos;
  if (!needs_quotes) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string ToCsv(const Table& t, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      AppendCsvField(t.schema().name(c), options.delimiter, out);
    }
    out += '\n';
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      AppendCsvField(t.cell(r, c), options.delimiter, out);
    }
    out += '\n';
  }
  return out;
}

util::Status WriteCsvFile(const Table& t, const std::string& path,
                          const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::NotFound("cannot open file for write: " + path);
  }
  out << ToCsv(t, options);
  if (!out) {
    return util::Status::Internal("write failed: " + path);
  }
  return util::Status::Ok();
}

}  // namespace multiem::table
