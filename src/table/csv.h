#ifndef MULTIEM_TABLE_CSV_H_
#define MULTIEM_TABLE_CSV_H_

#include <string>
#include <string_view>

#include "table/table.h"
#include "util/status.h"

namespace multiem::table {

/// Options for CSV parsing/serialization (RFC 4180 quoting rules).
struct CsvOptions {
  char delimiter = ',';
  /// When true, the first record is interpreted as the header (schema).
  bool has_header = true;
};

/// Parses CSV text into a Table. Fields may be quoted with '"'; embedded
/// quotes are doubled; embedded newlines inside quoted fields are supported.
/// Rows with a different width than the header produce InvalidArgument.
util::Result<Table> ParseCsv(std::string_view text,
                             const CsvOptions& options = {});

/// Reads and parses a CSV file from disk.
util::Result<Table> ReadCsvFile(const std::string& path,
                                const CsvOptions& options = {});

/// Serializes a table to CSV text (header first when options.has_header).
std::string ToCsv(const Table& t, const CsvOptions& options = {});

/// Writes a table to a CSV file, overwriting any existing file.
util::Status WriteCsvFile(const Table& t, const std::string& path,
                          const CsvOptions& options = {});

}  // namespace multiem::table

#endif  // MULTIEM_TABLE_CSV_H_
