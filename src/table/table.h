#ifndef MULTIEM_TABLE_TABLE_H_
#define MULTIEM_TABLE_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "table/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace multiem::table {

/// In-memory relational table: a Schema plus rows of string cells.
///
/// This is the E = {e_1..e_m} of the paper. Cells are strings because entity
/// matching serializes every value to text anyway (Section II-B); numeric
/// columns keep their textual form. Rows are stored row-major since the
/// dominant access pattern is whole-entity serialization.
class Table {
 public:
  Table() = default;
  /// Creates an empty table with the given name (e.g. "source_a") and schema.
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Table name; informational only.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_attributes(); }

  /// Appends a row. Returns InvalidArgument if the cell count does not match
  /// the schema width.
  util::Status AppendRow(std::vector<std::string> cells);

  /// Cell at (row, col); both must be in range.
  const std::string& cell(size_t row, size_t col) const {
    return rows_[row][col];
  }
  std::string& mutable_cell(size_t row, size_t col) { return rows_[row][col]; }

  /// Whole row; `row` must be < num_rows().
  const std::vector<std::string>& row(size_t row) const { return rows_[row]; }

  /// Copy of column `col` as a vector (length num_rows()).
  std::vector<std::string> Column(size_t col) const;

  /// Replaces column `col` with `values`; sizes must match.
  util::Status SetColumn(size_t col, std::vector<std::string> values);

  /// Reserves capacity for `n` rows.
  void Reserve(size_t n) { rows_.reserve(n); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<std::string>> rows_;
};

/// Concatenates tables that share a schema into one (Algorithm 1 line 1).
/// Returns InvalidArgument if `tables` is empty or schemas differ.
util::Result<Table> Concat(const std::vector<Table>& tables);

/// Uniform sample (without replacement) of ceil(ratio * num_rows) rows;
/// ratio is clamped to [0, 1]. The sampled table preserves row order.
Table SampleRows(const Table& t, double ratio, util::Rng& rng);

/// Copy of `t` with the values of column `col` randomly permuted across rows
/// (the shuffle step of Algorithm 1).
Table ShuffleColumn(const Table& t, size_t col, util::Rng& rng);

/// Copy of `t` keeping only the columns listed in `columns` (in that order).
/// Out-of-range column indices abort.
Table ProjectColumns(const Table& t, const std::vector<size_t>& columns);

}  // namespace multiem::table

#endif  // MULTIEM_TABLE_TABLE_H_
