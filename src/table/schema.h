#ifndef MULTIEM_TABLE_SCHEMA_H_
#define MULTIEM_TABLE_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace multiem::table {

/// Ordered list of attribute names shared by the rows of a Table.
///
/// Multi-table EM assumes the S input tables share one schema (Table I of the
/// paper: an entity is a list of (attr_j, val_j) pairs). Schemas compare by
/// name sequence.
class Schema {
 public:
  Schema() = default;
  /// Builds a schema from attribute names. Names should be unique; duplicate
  /// names make IndexOf return the first match.
  explicit Schema(std::vector<std::string> attribute_names)
      : names_(std::move(attribute_names)) {}

  /// Number of attributes (p in the paper).
  size_t num_attributes() const { return names_.size(); }

  /// Name of attribute `i`; i must be < num_attributes().
  const std::string& name(size_t i) const { return names_[i]; }

  /// All attribute names in order.
  const std::vector<std::string>& names() const { return names_; }

  /// Position of `attribute_name`, or nullopt if absent.
  std::optional<size_t> IndexOf(const std::string& attribute_name) const;

  bool operator==(const Schema& other) const { return names_ == other.names_; }
  bool operator!=(const Schema& other) const { return !(*this == other); }

 private:
  std::vector<std::string> names_;
};

}  // namespace multiem::table

#endif  // MULTIEM_TABLE_SCHEMA_H_
