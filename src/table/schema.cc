#include "table/schema.h"

namespace multiem::table {

std::optional<size_t> Schema::IndexOf(const std::string& attribute_name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == attribute_name) return i;
  }
  return std::nullopt;
}

}  // namespace multiem::table
