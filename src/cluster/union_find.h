#ifndef MULTIEM_CLUSTER_UNION_FIND_H_
#define MULTIEM_CLUSTER_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace multiem::cluster {

/// Disjoint-set forest with union by size and path compression.
///
/// This is the transitivity engine of the merging phase (Algorithm 3 line 8:
/// "Merge based on the transitivity"): matched pairs are union operations,
/// and the resulting sets are the candidate tuples.
class UnionFind {
 public:
  /// Creates `n` singleton sets with ids 0..n-1.
  explicit UnionFind(size_t n);

  /// Representative of the set containing `x` (with path compression).
  size_t Find(size_t x);

  /// Merges the sets of `a` and `b`; returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// True iff `a` and `b` are in the same set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Number of elements.
  size_t size() const { return parent_.size(); }

  /// Number of disjoint sets remaining.
  size_t num_sets() const { return num_sets_; }

  /// Size of the set containing `x`.
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  /// All sets as vectors of member ids; members and groups are emitted in
  /// ascending id order, so output is deterministic.
  std::vector<std::vector<size_t>> Groups();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace multiem::cluster

#endif  // MULTIEM_CLUSTER_UNION_FIND_H_
