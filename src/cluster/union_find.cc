#include "cluster/union_find.h"

#include <numeric>

namespace multiem::cluster {

UnionFind::UnionFind(size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), size_t{0});
}

size_t UnionFind::Find(size_t x) {
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::vector<std::vector<size_t>> UnionFind::Groups() {
  // first_member[root] -> group index, keyed by smallest member for
  // deterministic ordering.
  std::vector<std::vector<size_t>> groups;
  std::vector<size_t> group_of(parent_.size(), static_cast<size_t>(-1));
  for (size_t x = 0; x < parent_.size(); ++x) {
    size_t root = Find(x);
    if (group_of[root] == static_cast<size_t>(-1)) {
      group_of[root] = groups.size();
      groups.emplace_back();
    }
    groups[group_of[root]].push_back(x);
  }
  return groups;
}

}  // namespace multiem::cluster
