#ifndef MULTIEM_CLUSTER_DBSCAN_H_
#define MULTIEM_CLUSTER_DBSCAN_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ann/metric.h"
#include "embed/embedding.h"

namespace multiem::cluster {

/// Role assigned to each point by density classification (Definitions 3-5 of
/// the paper: core, reachable, outlier).
enum class PointRole { kCore, kReachable, kOutlier };

/// Parameters of density classification / DBSCAN.
struct DbscanConfig {
  /// Neighborhood radius (the paper's pruning grid: {0.8, 1.0} under L2 on
  /// unit-norm embeddings).
  float eps = 1.0f;
  /// Minimum neighborhood size (including the point itself, matching
  /// sklearn.cluster.DBSCAN, which the paper's implementation uses) for a
  /// point to be core. Paper default: 2.
  size_t min_pts = 2;
  ann::Metric metric = ann::Metric::kEuclidean;
};

/// Result of full DBSCAN clustering.
struct DbscanResult {
  /// Cluster label per point; kNoise (== -1) for outliers.
  std::vector<int> labels;
  /// Role per point.
  std::vector<PointRole> roles;
  /// Number of clusters found.
  int num_clusters = 0;

  static constexpr int kNoise = -1;
};

/// Classifies each row of `points` as core / reachable / outlier
/// (Algorithm 4 of the paper). This is the primitive the pruning phase uses
/// on each candidate tuple; it does not assign cluster ids.
std::vector<PointRole> ClassifyDensity(const embed::EmbeddingMatrix& points,
                                       const DbscanConfig& config);

/// Same classification over an explicit row subset (avoids copying tuple
/// member embeddings). `rows` indexes into `points`.
std::vector<PointRole> ClassifyDensity(const embed::EmbeddingMatrix& points,
                                       std::span<const size_t> rows,
                                       const DbscanConfig& config);

/// Full DBSCAN (Ester et al., KDD'96): density classification plus cluster
/// assignment by core-connectivity. O(n^2) distance evaluation; intended for
/// the moderate n of this library's workloads.
DbscanResult Dbscan(const embed::EmbeddingMatrix& points,
                    const DbscanConfig& config);

}  // namespace multiem::cluster

#endif  // MULTIEM_CLUSTER_DBSCAN_H_
