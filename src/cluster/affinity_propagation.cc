#include "cluster/affinity_propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace multiem::cluster {

std::vector<int> AffinityPropagation(const embed::EmbeddingMatrix& points,
                                     const AffinityPropagationConfig& config) {
  size_t n = points.num_rows();
  if (n == 0) return {};
  if (n == 1) return {0};

  // Similarity matrix s = -distance.
  std::vector<double> s(n * n, 0.0);
  std::vector<double> off_diagonal;
  off_diagonal.reserve(n * (n - 1));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double sim = -static_cast<double>(
          ann::Distance(config.metric, points.Row(i), points.Row(j)));
      s[i * n + j] = sim;
      off_diagonal.push_back(sim);
    }
  }
  double preference = config.preference;
  if (std::isnan(preference)) {
    // Median off-diagonal similarity.
    size_t mid = off_diagonal.size() / 2;
    std::nth_element(off_diagonal.begin(), off_diagonal.begin() + mid,
                     off_diagonal.end());
    preference = off_diagonal[mid];
  }
  for (size_t i = 0; i < n; ++i) s[i * n + i] = preference;

  std::vector<double> r(n * n, 0.0);  // responsibilities
  std::vector<double> a(n * n, 0.0);  // availabilities
  std::vector<int> exemplar(n, -1);
  size_t stable_iterations = 0;

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Responsibility update: r(i,k) = s(i,k) - max_{k'!=k} (a(i,k')+s(i,k')).
    for (size_t i = 0; i < n; ++i) {
      double best = -std::numeric_limits<double>::infinity();
      double second = best;
      size_t best_k = 0;
      for (size_t k = 0; k < n; ++k) {
        double v = a[i * n + k] + s[i * n + k];
        if (v > best) {
          second = best;
          best = v;
          best_k = k;
        } else if (v > second) {
          second = v;
        }
      }
      for (size_t k = 0; k < n; ++k) {
        double competitor = (k == best_k) ? second : best;
        double fresh = s[i * n + k] - competitor;
        r[i * n + k] =
            config.damping * r[i * n + k] + (1.0 - config.damping) * fresh;
      }
    }

    // Availability update:
    // a(i,k) = min(0, r(k,k) + sum_{i' not in {i,k}} max(0, r(i',k))), and
    // a(k,k) = sum_{i'!=k} max(0, r(i',k)).
    for (size_t k = 0; k < n; ++k) {
      double positive_sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (i == k) continue;
        positive_sum += std::max(0.0, r[i * n + k]);
      }
      for (size_t i = 0; i < n; ++i) {
        double fresh;
        if (i == k) {
          fresh = positive_sum;
        } else {
          double without_i = positive_sum - std::max(0.0, r[i * n + k]);
          fresh = std::min(0.0, r[k * n + k] + without_i);
        }
        a[i * n + k] =
            config.damping * a[i * n + k] + (1.0 - config.damping) * fresh;
      }
    }

    // Exemplar assignment: argmax_k a(i,k) + r(i,k).
    std::vector<int> fresh_exemplar(n);
    for (size_t i = 0; i < n; ++i) {
      double best = -std::numeric_limits<double>::infinity();
      int best_k = 0;
      for (size_t k = 0; k < n; ++k) {
        double v = a[i * n + k] + r[i * n + k];
        if (v > best) {
          best = v;
          best_k = static_cast<int>(k);
        }
      }
      fresh_exemplar[i] = best_k;
    }
    if (fresh_exemplar == exemplar) {
      if (++stable_iterations >= config.convergence_iterations) break;
    } else {
      stable_iterations = 0;
      exemplar = std::move(fresh_exemplar);
    }
  }

  // Points sharing an exemplar share a cluster; exemplars that chose
  // themselves anchor the clusters, others fall back to their own id.
  std::vector<int> labels(n, -1);
  int next_label = 0;
  std::vector<int> label_of_exemplar(n, -1);
  for (size_t i = 0; i < n; ++i) {
    int k = exemplar[i];
    if (label_of_exemplar[k] == -1) label_of_exemplar[k] = next_label++;
    labels[i] = label_of_exemplar[k];
  }
  return labels;
}

}  // namespace multiem::cluster
