#ifndef MULTIEM_CLUSTER_AGGLOMERATIVE_H_
#define MULTIEM_CLUSTER_AGGLOMERATIVE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ann/metric.h"
#include "embed/embedding.h"

namespace multiem::cluster {

/// Cluster-distance definitions for agglomerative clustering.
enum class Linkage {
  kSingle,    ///< min pairwise distance between clusters
  kComplete,  ///< max pairwise distance
  kAverage,   ///< mean pairwise distance (UPGMA)
};

/// Parameters of hierarchical agglomerative clustering.
struct AgglomerativeConfig {
  Linkage linkage = Linkage::kAverage;
  /// Stop merging when the closest pair of clusters is farther than this.
  float distance_threshold = 0.5f;
  ann::Metric metric = ann::Metric::kCosine;
  /// Source-aware constraint from MSCD-HAC (Saeedi et al., KEOD'21): when
  /// true, two clusters merge only if they share no source id, so a cluster
  /// holds at most one record per source ("clean" sources assumption).
  bool source_constraint = false;
};

/// Hierarchical agglomerative clustering with the Lance-Williams update.
///
/// This is the substrate of the MSCD-HAC baseline. Complexity is
/// Theta(n^2) memory and O(n^2 log n)-ish time via nearest-neighbor-chain
/// style scanning — intentionally faithful to the baseline's scalability
/// profile (the paper's Tables V/VI show it failing beyond small inputs).
class AgglomerativeClustering {
 public:
  explicit AgglomerativeClustering(AgglomerativeConfig config = {})
      : config_(config) {}

  /// Clusters the rows of `points`. `sources[i]` is the source id of row i
  /// (used only when source_constraint is set; pass {} otherwise).
  /// Returns cluster labels 0..num_clusters-1 per row.
  std::vector<int> Cluster(const embed::EmbeddingMatrix& points,
                           const std::vector<uint32_t>& sources) const;

  /// Estimated bytes needed for the n x n distance matrix; used by the
  /// memory-gating logic in the benches (the "-"/out-of-memory cells of
  /// Tables V/VI).
  static size_t EstimatedBytes(size_t n) { return n * n * sizeof(float); }

 private:
  AgglomerativeConfig config_;
};

}  // namespace multiem::cluster

#endif  // MULTIEM_CLUSTER_AGGLOMERATIVE_H_
