#ifndef MULTIEM_CLUSTER_AFFINITY_PROPAGATION_H_
#define MULTIEM_CLUSTER_AFFINITY_PROPAGATION_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "ann/metric.h"
#include "embed/embedding.h"

namespace multiem::cluster {

/// Parameters of affinity propagation (Frey & Dueck, Science 2007).
struct AffinityPropagationConfig {
  /// Damping factor in [0.5, 1) applied to message updates.
  double damping = 0.7;
  size_t max_iterations = 200;
  /// Stop after this many iterations without exemplar changes.
  size_t convergence_iterations = 15;
  /// Self-responsibility prior. NaN (default) uses the median similarity,
  /// the standard choice; lower values yield fewer clusters.
  double preference = std::numeric_limits<double>::quiet_NaN();
  ann::Metric metric = ann::Metric::kCosine;
};

/// Affinity propagation clustering on the rows of `points`: exchanges
/// responsibility/availability messages over the full similarity matrix
/// (similarity = -distance) until exemplars stabilize. O(n^2) memory per
/// iteration — the substrate of the MSCD-AP baseline, and intentionally as
/// heavy as the published algorithm.
/// Returns cluster labels 0..k-1 per row (every row assigned).
std::vector<int> AffinityPropagation(const embed::EmbeddingMatrix& points,
                                     const AffinityPropagationConfig& config);

}  // namespace multiem::cluster

#endif  // MULTIEM_CLUSTER_AFFINITY_PROPAGATION_H_
