#include "cluster/dbscan.h"

#include <deque>

namespace multiem::cluster {

namespace {

// Neighborhood lists (self included) for an explicit subset of rows.
std::vector<std::vector<size_t>> NeighborLists(
    const embed::EmbeddingMatrix& points, std::span<const size_t> rows,
    const DbscanConfig& config) {
  size_t n = rows.size();
  std::vector<std::vector<size_t>> neighbors(n);
  for (size_t i = 0; i < n; ++i) neighbors[i].push_back(i);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      float d = ann::Distance(config.metric, points.Row(rows[i]),
                              points.Row(rows[j]));
      if (d <= config.eps) {
        neighbors[i].push_back(j);
        neighbors[j].push_back(i);
      }
    }
  }
  return neighbors;
}

std::vector<PointRole> ClassifyFromNeighbors(
    const std::vector<std::vector<size_t>>& neighbors, size_t min_pts) {
  size_t n = neighbors.size();
  std::vector<PointRole> roles(n, PointRole::kOutlier);
  // Pass 1: core points (Definition 3).
  for (size_t i = 0; i < n; ++i) {
    if (neighbors[i].size() >= min_pts) roles[i] = PointRole::kCore;
  }
  // Pass 2: reachable points — non-core with a core point in range
  // (Definition 4); everything else stays an outlier (Definition 5).
  for (size_t i = 0; i < n; ++i) {
    if (roles[i] == PointRole::kCore) continue;
    for (size_t j : neighbors[i]) {
      if (j != i && roles[j] == PointRole::kCore) {
        roles[i] = PointRole::kReachable;
        break;
      }
    }
  }
  return roles;
}

}  // namespace

std::vector<PointRole> ClassifyDensity(const embed::EmbeddingMatrix& points,
                                       std::span<const size_t> rows,
                                       const DbscanConfig& config) {
  return ClassifyFromNeighbors(NeighborLists(points, rows, config),
                               config.min_pts);
}

std::vector<PointRole> ClassifyDensity(const embed::EmbeddingMatrix& points,
                                       const DbscanConfig& config) {
  std::vector<size_t> rows(points.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return ClassifyDensity(points, rows, config);
}

DbscanResult Dbscan(const embed::EmbeddingMatrix& points,
                    const DbscanConfig& config) {
  std::vector<size_t> rows(points.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  auto neighbors = NeighborLists(points, rows, config);

  DbscanResult result;
  result.roles = ClassifyFromNeighbors(neighbors, config.min_pts);
  result.labels.assign(points.num_rows(), DbscanResult::kNoise);

  // Expand clusters by BFS from unlabeled core points; reachable points take
  // the label of the first core point that reaches them.
  for (size_t seed = 0; seed < points.num_rows(); ++seed) {
    if (result.roles[seed] != PointRole::kCore ||
        result.labels[seed] != DbscanResult::kNoise) {
      continue;
    }
    int label = result.num_clusters++;
    std::deque<size_t> frontier{seed};
    result.labels[seed] = label;
    while (!frontier.empty()) {
      size_t current = frontier.front();
      frontier.pop_front();
      if (result.roles[current] != PointRole::kCore) continue;
      for (size_t next : neighbors[current]) {
        if (result.labels[next] != DbscanResult::kNoise) continue;
        if (result.roles[next] == PointRole::kOutlier) continue;
        result.labels[next] = label;
        frontier.push_back(next);
      }
    }
  }
  return result;
}

}  // namespace multiem::cluster
