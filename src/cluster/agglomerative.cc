#include "cluster/agglomerative.h"

#include <algorithm>
#include <limits>

namespace multiem::cluster {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

}  // namespace

std::vector<int> AgglomerativeClustering::Cluster(
    const embed::EmbeddingMatrix& points,
    const std::vector<uint32_t>& sources) const {
  size_t n = points.num_rows();
  std::vector<int> labels(n, 0);
  if (n == 0) return labels;

  // Full condensed distance matrix; `dist[i][j]` is the current
  // cluster-to-cluster distance (Lance-Williams updated in place).
  std::vector<std::vector<float>> dist(n, std::vector<float>(n, 0.0f));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      float d = ann::Distance(config_.metric, points.Row(i), points.Row(j));
      dist[i][j] = d;
      dist[j][i] = d;
    }
  }

  std::vector<bool> active(n, true);
  std::vector<size_t> cluster_size(n, 1);
  // Cluster id -> bitmask-ish source list (small vectors; sources per
  // cluster stay tiny under the constraint).
  std::vector<std::vector<uint32_t>> cluster_sources(n);
  bool use_sources = config_.source_constraint && sources.size() == n;
  if (use_sources) {
    for (size_t i = 0; i < n; ++i) cluster_sources[i].push_back(sources[i]);
  }
  // Each point starts as its own cluster; cluster_of maps point -> current id.
  std::vector<size_t> cluster_of(n);
  for (size_t i = 0; i < n; ++i) cluster_of[i] = i;

  auto shares_source = [&](size_t a, size_t b) {
    for (uint32_t sa : cluster_sources[a]) {
      for (uint32_t sb : cluster_sources[b]) {
        if (sa == sb) return true;
      }
    }
    return false;
  };

  for (;;) {
    // Find the closest admissible pair of active clusters.
    float best = kInf;
    size_t best_a = 0;
    size_t best_b = 0;
    for (size_t a = 0; a < n; ++a) {
      if (!active[a]) continue;
      for (size_t b = a + 1; b < n; ++b) {
        if (!active[b]) continue;
        if (dist[a][b] < best) {
          if (use_sources && shares_source(a, b)) continue;
          best = dist[a][b];
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best > config_.distance_threshold || best == kInf) break;

    // Merge best_b into best_a with the Lance-Williams update.
    size_t sa = cluster_size[best_a];
    size_t sb = cluster_size[best_b];
    for (size_t c = 0; c < n; ++c) {
      if (!active[c] || c == best_a || c == best_b) continue;
      float dac = dist[best_a][c];
      float dbc = dist[best_b][c];
      float merged = 0.0f;
      switch (config_.linkage) {
        case Linkage::kSingle:
          merged = std::min(dac, dbc);
          break;
        case Linkage::kComplete:
          merged = std::max(dac, dbc);
          break;
        case Linkage::kAverage:
          merged = (dac * static_cast<float>(sa) +
                    dbc * static_cast<float>(sb)) /
                   static_cast<float>(sa + sb);
          break;
      }
      dist[best_a][c] = merged;
      dist[c][best_a] = merged;
    }
    cluster_size[best_a] = sa + sb;
    active[best_b] = false;
    if (use_sources) {
      auto& merged_sources = cluster_sources[best_a];
      merged_sources.insert(merged_sources.end(),
                            cluster_sources[best_b].begin(),
                            cluster_sources[best_b].end());
      cluster_sources[best_b].clear();
    }
    for (size_t p = 0; p < n; ++p) {
      if (cluster_of[p] == best_b) cluster_of[p] = best_a;
    }
  }

  // Compact cluster ids to 0..k-1 in first-appearance order.
  std::vector<int> compact(n, -1);
  int next = 0;
  for (size_t p = 0; p < n; ++p) {
    size_t c = cluster_of[p];
    if (compact[c] == -1) compact[c] = next++;
    labels[p] = compact[c];
  }
  return labels;
}

}  // namespace multiem::cluster
