#include "datagen/person.h"

#include "datagen/corruption.h"
#include "datagen/vocab.h"

namespace multiem::datagen {

MultiSourceBenchmark GeneratePerson(const PersonConfig& config) {
  util::Rng rng(config.seed);
  table::Schema schema({"givenname", "surname", "suburb", "postcode"});
  MultiSourceAssembler assembler(config.num_sources, schema);

  // Fixed suburb -> postcode mapping (postcodes are meaningful geography,
  // not random noise — that is why selection keeps them on this dataset).
  auto suburb_postcode = [](size_t suburb_index) {
    return std::to_string(2000 + 37 * suburb_index % 8000);
  };

  for (size_t e = 0; e < config.num_entities; ++e) {
    std::string given(Pick(GivenNames(), rng));
    std::string surname(Pick(Surnames(), rng));
    size_t suburb_index = rng.NextBounded(Suburbs().size());
    std::string suburb(Suburbs()[suburb_index]);
    std::string postcode = suburb_postcode(suburb_index);

    std::vector<MultiSourceAssembler::Copy> copies;
    for (uint32_t s = 0; s < config.num_sources; ++s) {
      if (!rng.Bernoulli(config.presence_prob)) continue;
      // Name fields get occasional typos; postcode digits flip rarely.
      std::string source_given =
          rng.Bernoulli(0.12) ? CorruptionModel::ApplyTypo(given, rng) : given;
      std::string source_surname =
          rng.Bernoulli(0.12) ? CorruptionModel::ApplyTypo(surname, rng)
                              : surname;
      std::string source_suburb =
          rng.Bernoulli(0.06) ? CorruptionModel::ApplyTypo(suburb, rng)
                              : suburb;
      MultiSourceAssembler::Copy copy;
      copy.source = s;
      copy.cells = {
          std::move(source_given),
          std::move(source_surname),
          std::move(source_suburb),
          CorruptionModel::CorruptDigits(postcode, config.postcode_noise, rng),
      };
      copies.push_back(std::move(copy));
    }
    assembler.AddEntity(std::move(copies));
  }
  return assembler.Finish("Person", rng);
}

}  // namespace multiem::datagen
