#include "datagen/geo.h"

#include <cstdio>

#include "datagen/corruption.h"
#include "datagen/vocab.h"

namespace multiem::datagen {

namespace {

std::string FormatCoordinate(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

MultiSourceBenchmark GenerateGeo(const GeoConfig& config) {
  util::Rng rng(config.seed);
  table::Schema schema({"name", "longitude", "latitude"});
  MultiSourceAssembler assembler(config.num_sources, schema);

  CorruptionConfig noise;
  noise.typo_prob = 0.05;
  noise.drop_token_prob = 0.03;
  noise.swap_tokens_prob = 0.03;
  noise.abbreviate_prob = 0.02;
  CorruptionModel corruptor(noise);

  for (size_t e = 0; e < config.num_entities; ++e) {
    // Canonical place name, e.g. "crimson feather falls" / "mount walker".
    std::string name;
    switch (rng.NextBounded(3)) {
      case 0:
        name = std::string(Pick(Adjectives(), rng)) + " " +
               std::string(Pick(Nouns(), rng)) + " " +
               std::string(Pick(GeoFeatures(), rng));
        break;
      case 1:
        name = "mount " + std::string(Pick(Surnames(), rng)) + " " +
               std::string(Pick(GeoFeatures(), rng));
        break;
      default:
        name = std::string(Pick(Nouns(), rng)) + " " +
               std::string(Pick(GeoFeatures(), rng)) + " " +
               std::string(Pick(Suburbs(), rng));
        break;
    }
    // Half the names carry a qualifier, like real gazetteer entries
    // ("north", "east", "upper" ...).
    if (rng.Bernoulli(0.5)) {
      constexpr std::string_view kQualifiers[] = {
          "north", "south", "east", "west", "upper", "lower", "new", "old"};
      name = std::string(kQualifiers[rng.NextBounded(8)]) + " " + name;
    }
    // Entities cluster into geographic regions, so *different* nearby places
    // share coarse coordinates (a real confusion source in settlement data);
    // the region grid is derived from the entity index for determinism.
    double region_lon = static_cast<double>(rng.NextBounded(48)) * 7.0 - 168.0;
    double region_lat = static_cast<double>(rng.NextBounded(24)) * 6.5 - 78.0;
    double lon = region_lon + rng.UniformDouble(-0.25, 0.25);
    double lat = region_lat + rng.UniformDouble(-0.25, 0.25);

    std::vector<MultiSourceAssembler::Copy> copies;
    for (uint32_t s = 0; s < config.num_sources; ++s) {
      if (!rng.Bernoulli(config.presence_prob)) continue;
      // Cross-source coordinates drift by geocoder jitter; a notable
      // fraction are plainly wrong (lat/lon swapped or re-geocoded), as in
      // real multi-source gazetteers.
      double copy_lon = lon + rng.UniformDouble(-config.coordinate_jitter,
                                                config.coordinate_jitter);
      double copy_lat = lat + rng.UniformDouble(-config.coordinate_jitter,
                                                config.coordinate_jitter);
      if (rng.Bernoulli(0.15)) {
        if (rng.Bernoulli(0.5)) {
          std::swap(copy_lon, copy_lat);
        } else {
          copy_lon = rng.UniformDouble(-180.0, 180.0);
          copy_lat = rng.UniformDouble(-90.0, 90.0);
        }
      }
      MultiSourceAssembler::Copy copy;
      copy.source = s;
      copy.cells = {
          corruptor.CorruptText(name, rng),
          FormatCoordinate(copy_lon),
          FormatCoordinate(copy_lat),
      };
      copies.push_back(std::move(copy));
    }
    assembler.AddEntity(std::move(copies));
  }
  return assembler.Finish("Geo", rng);
}

}  // namespace multiem::datagen
