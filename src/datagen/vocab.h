#ifndef MULTIEM_DATAGEN_VOCAB_H_
#define MULTIEM_DATAGEN_VOCAB_H_

#include <span>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace multiem::datagen {

/// Word banks used by the synthetic dataset generators. Each bank is a
/// stable, ordered array so generation is deterministic given a seed.
std::span<const std::string_view> GivenNames();
std::span<const std::string_view> Surnames();
std::span<const std::string_view> Suburbs();
std::span<const std::string_view> Adjectives();
std::span<const std::string_view> Nouns();
std::span<const std::string_view> GeoFeatures();     // lake, ridge, falls...
std::span<const std::string_view> MusicTitleWords();
std::span<const std::string_view> AlbumWords();
std::span<const std::string_view> Languages();
std::span<const std::string_view> Brands();
std::span<const std::string_view> ProductNouns();
std::span<const std::string_view> ProductSpecs();    // 64gb, xl, v2, pro...
std::span<const std::string_view> Colors();
std::span<const std::string_view> ShopeeFillers();   // promo, original, ...

/// Uniform draw from a bank.
std::string_view Pick(std::span<const std::string_view> bank, util::Rng& rng);

/// Space-joined draw of `count` distinct-ish words from a bank.
std::string PickPhrase(std::span<const std::string_view> bank, size_t count,
                       util::Rng& rng);

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_VOCAB_H_
