#ifndef MULTIEM_DATAGEN_BENCHMARK_DATA_H_
#define MULTIEM_DATAGEN_BENCHMARK_DATA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "eval/tuples.h"
#include "table/table.h"
#include "util/rng.h"

namespace multiem::datagen {

/// A generated multi-source EM benchmark: S tables plus ground truth.
struct MultiSourceBenchmark {
  std::string name;
  std::vector<table::Table> tables;
  /// Ground-truth matched tuples (entities present in >= 2 sources).
  eval::TupleSet truth;

  /// Table III statistics.
  size_t NumSources() const { return tables.size(); }
  size_t NumEntities() const {
    size_t total = 0;
    for (const auto& t : tables) total += t.num_rows();
    return total;
  }
  size_t NumTuples() const { return truth.size(); }
  size_t NumPairs() const { return truth.ToPairs().size(); }
  size_t NumAttributes() const {
    return tables.empty() ? 0 : tables[0].num_columns();
  }
};

/// Accumulates per-source rendered copies of canonical entities, then
/// shuffles each source table (so row order carries no identity signal) and
/// emits the benchmark with correctly remapped ground-truth EntityIds.
class MultiSourceAssembler {
 public:
  /// `schema` is shared by all sources.
  MultiSourceAssembler(size_t num_sources, table::Schema schema);

  /// One rendered copy of an entity in one source.
  struct Copy {
    uint32_t source;
    std::vector<std::string> cells;
  };

  /// Registers all copies of the next canonical entity. Copies in >= 2
  /// distinct sources produce a ground-truth tuple. Multiple copies in the
  /// same source are allowed (dirty-source scenarios).
  void AddEntity(std::vector<Copy> copies);

  /// Builds the benchmark: shuffles every source table with `rng`, remaps
  /// truth ids, names tables "source_0".."source_{S-1}".
  MultiSourceBenchmark Finish(std::string name, util::Rng& rng);

 private:
  size_t num_sources_;
  table::Schema schema_;
  std::vector<std::vector<std::vector<std::string>>> rows_per_source_;
  /// Per entity: list of (source, pre-shuffle row index).
  std::vector<std::vector<std::pair<uint32_t, size_t>>> entity_copies_;
};

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_BENCHMARK_DATA_H_
