#ifndef MULTIEM_DATAGEN_DATASETS_H_
#define MULTIEM_DATAGEN_DATASETS_H_

#include <string>
#include <string_view>
#include <vector>

#include "datagen/benchmark_data.h"
#include "util/status.h"

namespace multiem::datagen {

/// Names of the six paper benchmarks in Table III order.
std::vector<std::string> DatasetNames();

/// Builds the laptop-scaled counterpart of a paper dataset by name:
/// "geo", "music-20", "music-200", "music-2000", "person", "shopee"
/// (case-insensitive). `scale` multiplies the default entity count
/// (1.0 = the scaled defaults documented in DESIGN.md; the paper-sized
/// corpora are ~1-100x larger — every bench prints the scale it ran at).
util::Result<MultiSourceBenchmark> MakeDataset(std::string_view name,
                                               double scale = 1.0,
                                               uint64_t seed_offset = 0);

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_DATASETS_H_
