#include "datagen/shopee.h"

#include "datagen/corruption.h"
#include "datagen/vocab.h"
#include "util/string_util.h"

namespace multiem::datagen {

MultiSourceBenchmark GenerateShopee(const ShopeeConfig& config) {
  util::Rng rng(config.seed);
  table::Schema schema({"title"});
  MultiSourceAssembler assembler(config.num_sources, schema);

  CorruptionConfig noise;
  noise.typo_prob = 0.08;
  noise.drop_token_prob = 0.10;
  noise.swap_tokens_prob = 0.10;
  noise.abbreviate_prob = 0.04;
  noise.filler_prob = 0.5;
  for (std::string_view w : ShopeeFillers()) {
    noise.filler_words.emplace_back(w);
  }
  CorruptionModel corruptor(noise);

  for (size_t f = 0; f < config.num_families; ++f) {
    // Family stem shared by the confusable entities.
    std::string stem = std::string(Pick(Brands(), rng)) + " " +
                       std::string(Pick(ProductNouns(), rng)) + " " +
                       std::string(Pick(ProductSpecs(), rng));
    size_t variants = 1 + rng.NextBounded(3);
    for (size_t v = 0; v < variants; ++v) {
      // Each variant is a *different* real-world product: same stem, its own
      // distinguishing spec + color.
      std::string title = stem + " " + std::string(Pick(ProductSpecs(), rng)) +
                          " " + std::string(Pick(Colors(), rng));
      std::vector<MultiSourceAssembler::Copy> copies;
      for (uint32_t s = 0; s < config.num_sources; ++s) {
        if (!rng.Bernoulli(config.presence_prob)) continue;
        MultiSourceAssembler::Copy copy;
        copy.source = s;
        copy.cells = {corruptor.CorruptText(title, rng)};
        copies.push_back(std::move(copy));
      }
      assembler.AddEntity(std::move(copies));
    }
  }
  return assembler.Finish("Shopee", rng);
}

}  // namespace multiem::datagen
