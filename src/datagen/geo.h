#ifndef MULTIEM_DATAGEN_GEO_H_
#define MULTIEM_DATAGEN_GEO_H_

#include <cstdint>

#include "datagen/benchmark_data.h"

namespace multiem::datagen {

/// Synthetic counterpart of the paper's Geo dataset (4 sources, attributes
/// name/longitude/latitude, ~3k entities in ~820 truth tuples).
/// Geographic names are multi-word lexical phrases; coordinates are decimal
/// numbers that differ slightly between sources — so attribute selection
/// should keep `name` and reject `longitude`/`latitude` (Table VII).
struct GeoConfig {
  /// Number of canonical real-world entities (paper-scale: 820 tuples).
  size_t num_entities = 820;
  size_t num_sources = 4;
  /// Probability an entity is listed in each source (0.93 reproduces the
  /// paper's ~3.7 average copies over 4 sources).
  double presence_prob = 0.93;
  /// Coordinate jitter between sources, in degrees (cross-source geocoders disagree at km scale).
  double coordinate_jitter = 0.05;
  uint64_t seed = 17;
};

/// Generates the benchmark; deterministic given the config.
MultiSourceBenchmark GenerateGeo(const GeoConfig& config);

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_GEO_H_
