#include "datagen/scale.h"

#include <algorithm>
#include <cmath>

#include "datagen/vocab.h"
#include "util/rng.h"

namespace multiem::datagen {

namespace {

// Counter-based stream seed: one Mix64 chain over (seed, domain, counter).
// Every row draws from its own Rng seeded this way, which is what makes
// chunks order-independent.
uint64_t StreamSeed(uint64_t seed, uint64_t domain, uint64_t counter) {
  return util::Mix64(util::Mix64(seed ^ 0x5343414C45ULL /* "SCALE" */) ^
                     util::Mix64(domain * 0x9E3779B97F4A7C15ULL + counter));
}

// Canonical (pre-corruption) entity render: title from the product banks,
// a color, drawn from the entity's own stream.
struct CanonicalEntity {
  std::string title;
  std::string color;
};

CanonicalEntity RenderEntity(uint64_t seed, uint64_t entity) {
  util::Rng rng(StreamSeed(seed, /*domain=*/0, entity));
  CanonicalEntity out;
  out.title = std::string(Pick(Brands(), rng));
  out.title += ' ';
  out.title += PickPhrase(ProductNouns(), 2, rng);
  out.title += ' ';
  out.title += Pick(ProductSpecs(), rng);
  out.color = Pick(Colors(), rng);
  return out;
}

std::string RandomSku(util::Rng& rng) {
  static constexpr char kAlnum[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string sku;
  sku.reserve(8);
  for (int i = 0; i < 8; ++i) {
    sku += kAlnum[rng.NextBounded(sizeof(kAlnum) - 1)];
  }
  return sku;
}

}  // namespace

ScaleCorpusGenerator::ScaleCorpusGenerator(ScaleCorpusConfig config)
    : config_(std::move(config)),
      schema_({"title", "color", "sku"}),
      corruption_(config_.corruption) {
  shared_rows_ = static_cast<size_t>(
      std::llround(config_.overlap *
                   static_cast<double>(config_.rows_per_source)));
  shared_rows_ = std::min(shared_rows_, config_.rows_per_source);
}

void ScaleCorpusGenerator::AppendRows(size_t source, size_t row_begin,
                                      size_t row_end,
                                      table::Table* out) const {
  row_end = std::min(row_end, config_.rows_per_source);
  for (size_t row = row_begin; row < row_end; ++row) {
    // Shared prefix: entity id = row, identical in every source. Unique
    // tail: an id no other (source, row) produces.
    const bool shared = row < shared_rows_;
    const uint64_t entity =
        shared ? row
               : (source + 1) * config_.rows_per_source + row;
    CanonicalEntity canonical = RenderEntity(config_.seed, entity);

    // The copy stream covers everything source-specific: corruption of
    // shared entities (unique ones stay verbatim so they do not accidentally
    // drift toward each other) and the noise `sku` cell.
    util::Rng copy_rng(
        StreamSeed(config_.seed, /*domain=*/source + 1, entity));
    std::string title =
        shared ? corruption_.CorruptText(canonical.title, copy_rng)
               : std::move(canonical.title);
    out->AppendRow({std::move(title), std::move(canonical.color),
                    RandomSku(copy_rng)})
        .CheckOk();
  }
}

table::Table ScaleCorpusGenerator::MaterializeSource(size_t source) const {
  table::Table t(source_name(source), schema_);
  AppendRows(source, 0, config_.rows_per_source, &t);
  return t;
}

}  // namespace multiem::datagen
