#include "datagen/vocab.h"

namespace multiem::datagen {

namespace {

constexpr std::string_view kGivenNames[] = {
    "james",   "mary",     "robert",  "patricia", "john",    "jennifer",
    "michael", "linda",    "david",   "elizabeth", "william", "barbara",
    "richard", "susan",    "joseph",  "jessica",  "thomas",  "sarah",
    "charles", "karen",    "chris",   "lisa",     "daniel",  "nancy",
    "matthew", "betty",    "anthony", "margaret", "mark",    "sandra",
    "donald",  "ashley",   "steven",  "kimberly", "paul",    "emily",
    "andrew",  "donna",    "joshua",  "michelle", "kenneth", "carol",
    "kevin",   "amanda",   "brian",   "dorothy",  "george",  "melissa",
    "edward",  "deborah",  "ronald",  "stephanie", "timothy", "rebecca",
    "jason",   "sharon",   "jeffrey", "laura",    "ryan",    "cynthia",
    "jacob",   "kathleen", "gary",    "amy",      "nicholas", "angela",
    "eric",    "shirley",  "jonathan", "anna",    "stephen", "brenda",
    "larry",   "pamela",   "justin",  "emma",     "scott",   "nicole",
    "brandon", "helen",    "benjamin", "samantha", "samuel", "katherine",
    "gregory", "christine", "frank",  "debra",    "alexander", "rachel",
    "raymond", "carolyn",  "patrick", "janet",    "jack",    "catherine",
    "dennis",  "maria",    "jerry",   "heather",  "tyler",   "diane",
    "aaron",   "ruth",     "jose",    "julie",    "adam",    "olivia",
    "nathan",  "joyce",    "henry",   "virginia", "douglas", "victoria",
    "zachary", "kelly",    "peter",   "lauren",   "kyle",    "christina",
};

constexpr std::string_view kSurnames[] = {
    "smith",    "johnson",  "williams", "brown",    "jones",    "garcia",
    "miller",   "davis",    "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez", "wilson",   "anderson", "thomas",   "taylor",   "moore",
    "jackson",  "martin",   "lee",      "perez",    "thompson", "white",
    "harris",   "sanchez",  "clark",    "ramirez",  "lewis",    "robinson",
    "walker",   "young",    "allen",    "king",     "wright",   "scott",
    "torres",   "nguyen",   "hill",     "flores",   "green",    "adams",
    "nelson",   "baker",    "hall",     "rivera",   "campbell", "mitchell",
    "carter",   "roberts",  "gomez",    "phillips", "evans",    "turner",
    "diaz",     "parker",   "cruz",     "edwards",  "collins",  "reyes",
    "stewart",  "morris",   "morales",  "murphy",   "cook",     "rogers",
    "gutierrez", "ortiz",   "morgan",   "cooper",   "peterson", "bailey",
    "reed",     "kelly",    "howard",   "ramos",    "kim",      "cox",
    "ward",     "richardson", "watson", "brooks",   "chavez",   "wood",
    "james",    "bennett",  "gray",     "mendoza",  "ruiz",     "hughes",
    "price",    "alvarez",  "castillo", "sanders",  "patel",    "myers",
    "long",     "ross",     "foster",   "jimenez",
};

constexpr std::string_view kSuburbs[] = {
    "ashfield",   "bankstown",  "burwood",     "campsie",    "chatswood",
    "cronulla",   "darlinghurst", "eastwood",  "epping",     "fairfield",
    "glebe",      "hornsby",    "hurstville",  "kensington", "kogarah",
    "lakemba",    "leichhardt", "liverpool",   "manly",      "marrickville",
    "mascot",     "miranda",    "mosman",      "newtown",    "paddington",
    "parramatta", "penrith",    "randwick",    "redfern",    "rockdale",
    "ryde",       "strathfield", "sutherland", "waterloo",   "westmead",
    "woollahra",  "blacktown",  "auburn",      "granville",  "lidcombe",
    "carlton",    "richmond",   "fitzroy",     "brunswick",  "coburg",
    "preston",    "thornbury",  "northcote",   "kew",        "hawthorn",
    "toorak",     "prahran",    "stkilda",     "elwood",     "brighton",
    "caulfield",  "malvern",    "camberwell",  "doncaster",  "ringwood",
};

constexpr std::string_view kAdjectives[] = {
    "silent",  "golden",  "crimson", "hidden",  "broken",  "velvet",
    "electric", "burning", "frozen", "endless", "wild",    "lonely",
    "midnight", "shining", "fading", "distant", "sacred",  "gentle",
    "hollow",  "silver",  "scarlet", "quiet",   "restless", "ancient",
    "northern", "southern", "eastern", "western", "rising", "falling",
    "glass",   "iron",    "paper",   "stone",   "neon",    "lunar",
    "solar",   "echoing", "wandering", "forgotten",
};

constexpr std::string_view kNouns[] = {
    "river",   "sky",      "dream",   "heart",   "road",     "fire",
    "shadow",  "light",    "storm",   "garden",  "ocean",    "mountain",
    "city",    "night",    "morning", "summer",  "winter",   "autumn",
    "mirror",  "window",   "door",    "bridge",  "tower",    "castle",
    "island",  "desert",   "forest",  "meadow",  "valley",   "canyon",
    "harbor",  "lantern",  "compass", "anchor",  "feather",  "ember",
    "crystal", "thunder",  "horizon", "voyage",
};

constexpr std::string_view kGeoFeatures[] = {
    "lake",  "ridge",  "falls",  "creek",  "summit", "glacier",
    "bay",   "point",  "bluff",  "hollow", "spring", "gorge",
    "mesa",  "butte",  "shoal",  "strait", "basin",  "plateau",
    "cove",  "lagoon", "marsh",  "rapids", "cliff",  "dune",
};

constexpr std::string_view kMusicTitleWords[] = {
    "love",    "night",   "dance",   "heart",  "baby",    "time",
    "fire",    "rain",    "dream",   "blue",   "moon",    "star",
    "summer",  "girl",    "boy",     "road",   "home",    "light",
    "shadow",  "tears",   "smile",   "kiss",   "angel",   "devil",
    "river",   "sky",     "sun",     "gold",   "wild",    "free",
    "lonely",  "crazy",   "sweet",   "cold",   "burning", "broken",
    "forever", "tonight", "yesterday", "tomorrow", "memories", "paradise",
    "thunder", "lightning", "whisper", "echo",  "rhythm",  "melody",
    "harmony", "soul",
};

constexpr std::string_view kAlbumWords[] = {
    "chronicles", "sessions", "anthology", "collection", "stories",
    "tales",      "visions",  "reflections", "portraits", "landscapes",
    "journeys",   "horizons", "fragments", "elements",  "seasons",
    "colors",     "shadows",  "echoes",    "waves",      "currents",
    "chameleon",  "mosaic",   "kaleidoscope", "spectrum", "prism",
    "odyssey",    "voyage",   "expedition", "atlas",     "meridian",
};

constexpr std::string_view kLanguages[] = {
    "english", "german", "french", "spanish", "italian",
};

constexpr std::string_view kBrands[] = {
    "apple",   "samsung", "xiaomi",  "huawei",  "sony",    "lenovo",
    "asus",    "acer",    "dell",    "logitech", "philips", "panasonic",
    "canon",   "nikon",   "bosch",   "miele",   "dyson",   "nespresso",
    "adidas",  "nike",    "puma",    "uniqlo",  "zara",    "casio",
    "seiko",   "garmin",  "jbl",     "anker",   "sandisk", "kingston",
};

constexpr std::string_view kProductNouns[] = {
    "phone",     "laptop",   "tablet",   "monitor",  "keyboard", "mouse",
    "headphones", "earbuds", "speaker",  "charger",  "cable",    "adapter",
    "powerbank", "camera",   "lens",     "tripod",   "backpack", "wallet",
    "watch",     "band",     "case",     "cover",    "screen",   "protector",
    "blender",   "kettle",   "toaster",  "vacuum",   "fan",      "heater",
    "lamp",      "senter",   "flashlight", "router", "drive",    "card",
};

constexpr std::string_view kProductSpecs[] = {
    "64gb",  "128gb", "256gb",  "32gb",  "16gb",  "8gb",
    "pro",   "max",   "mini",   "plus",  "lite",  "ultra",
    "v2",    "v3",    "mk2",    "gen3",  "xl",    "xs",
    "4g",    "5g",    "wifi",   "usb",   "typec", "wireless",
    "55",    "58",    "65",     "13",    "14",    "15",
    "zoom",  "hd",    "fhd",    "4k",    "led",   "cob",
};

constexpr std::string_view kColors[] = {
    "black", "white",  "silver", "gray",   "gold",  "rose",
    "blue",  "navy",   "red",    "green",  "olive", "purple",
    "pink",  "yellow", "orange", "bronze", "teal",  "ivory",
};

constexpr std::string_view kShopeeFillers[] = {
    "original", "murah",   "promo",    "terbaru", "grosir", "ready",
    "stock",    "garansi", "official", "import",  "cod",    "bisa",
    "free",     "shipping", "diskon",  "sale",    "hot",    "new",
};

}  // namespace

#define MULTIEM_BANK(fn, array)                          \
  std::span<const std::string_view> fn() {               \
    return std::span<const std::string_view>(array);     \
  }

MULTIEM_BANK(GivenNames, kGivenNames)
MULTIEM_BANK(Surnames, kSurnames)
MULTIEM_BANK(Suburbs, kSuburbs)
MULTIEM_BANK(Adjectives, kAdjectives)
MULTIEM_BANK(Nouns, kNouns)
MULTIEM_BANK(GeoFeatures, kGeoFeatures)
MULTIEM_BANK(MusicTitleWords, kMusicTitleWords)
MULTIEM_BANK(AlbumWords, kAlbumWords)
MULTIEM_BANK(Languages, kLanguages)
MULTIEM_BANK(Brands, kBrands)
MULTIEM_BANK(ProductNouns, kProductNouns)
MULTIEM_BANK(ProductSpecs, kProductSpecs)
MULTIEM_BANK(Colors, kColors)
MULTIEM_BANK(ShopeeFillers, kShopeeFillers)

#undef MULTIEM_BANK

std::string_view Pick(std::span<const std::string_view> bank,
                      util::Rng& rng) {
  return bank[rng.NextBounded(bank.size())];
}

std::string PickPhrase(std::span<const std::string_view> bank, size_t count,
                       util::Rng& rng) {
  std::string out;
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) out += ' ';
    out += Pick(bank, rng);
  }
  return out;
}

}  // namespace multiem::datagen
