#include "datagen/datasets.h"

#include <algorithm>

#include "datagen/geo.h"
#include "datagen/music.h"
#include "datagen/person.h"
#include "datagen/shopee.h"
#include "util/string_util.h"

namespace multiem::datagen {

namespace {

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(8, static_cast<size_t>(base * scale));
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"geo", "music-20", "music-200", "music-2000", "person", "shopee"};
}

util::Result<MultiSourceBenchmark> MakeDataset(std::string_view name,
                                               double scale,
                                               uint64_t seed_offset) {
  std::string key = util::ToLower(name);
  if (key == "geo") {
    GeoConfig config;
    config.num_entities = Scaled(820, scale);
    config.seed += seed_offset;
    MultiSourceBenchmark b = GenerateGeo(config);
    b.name = "Geo";
    return b;
  }
  if (key == "music-20" || key == "music20") {
    MusicConfig config;
    config.num_entities = Scaled(600, scale);
    config.seed = 20 + seed_offset;
    MultiSourceBenchmark b = GenerateMusic(config);
    b.name = "Music-20";
    return b;
  }
  if (key == "music-200" || key == "music200") {
    MusicConfig config;
    config.num_entities = Scaled(3000, scale);
    config.seed = 200 + seed_offset;
    MultiSourceBenchmark b = GenerateMusic(config);
    b.name = "Music-200";
    return b;
  }
  if (key == "music-2000" || key == "music2000") {
    MusicConfig config;
    config.num_entities = Scaled(8000, scale);
    config.seed = 2000 + seed_offset;
    MultiSourceBenchmark b = GenerateMusic(config);
    b.name = "Music-2000";
    return b;
  }
  if (key == "person") {
    PersonConfig config;
    config.num_entities = Scaled(7000, scale);
    config.seed = 5 + seed_offset;
    MultiSourceBenchmark b = GeneratePerson(config);
    b.name = "Person";
    return b;
  }
  if (key == "shopee") {
    ShopeeConfig config;
    config.num_families = Scaled(1800, scale);
    config.seed = 34 + seed_offset;
    MultiSourceBenchmark b = GenerateShopee(config);
    b.name = "Shopee";
    return b;
  }
  return util::Status::NotFound("unknown dataset: " + std::string(name));
}

}  // namespace multiem::datagen
