#ifndef MULTIEM_DATAGEN_SHOPEE_H_
#define MULTIEM_DATAGEN_SHOPEE_H_

#include <cstdint>

#include "datagen/benchmark_data.h"

namespace multiem::datagen {

/// Synthetic counterpart of the paper's Shopee dataset (Kaggle "Shopee —
/// Price Match Guarantee"): 20 sources, a single `title` attribute, and —
/// crucially — families of *confusable* products whose titles differ by one
/// spec token ("senter mini xpe q5 zoom usb" vs "senter mini xpe u3 zoom
/// police"). Section IV-B explains that this confusability caps every
/// method's F1; the generator reproduces it by emitting several distinct
/// entities per product family.
struct ShopeeConfig {
  /// Number of product families; each spawns 1-3 confusable entities.
  size_t num_families = 1800;
  size_t num_sources = 20;
  /// Presence probability per source (~3 average copies over 20 sources).
  double presence_prob = 0.15;
  uint64_t seed = 34;
};

/// Generates the benchmark; deterministic given the config.
MultiSourceBenchmark GenerateShopee(const ShopeeConfig& config);

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_SHOPEE_H_
