#ifndef MULTIEM_DATAGEN_CORRUPTION_H_
#define MULTIEM_DATAGEN_CORRUPTION_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace multiem::datagen {

/// Probabilities of the textual noise operators applied when rendering an
/// entity into one source. Models the cross-platform title/description drift
/// of Figure 1 in the paper ("apple iphone 8 plus 64gb" vs "apple iphone 8
/// plus 5.5 64gb 4g unlocked sim free", ...).
struct CorruptionConfig {
  /// Per-token chance of one character-level typo (swap/delete/insert/replace).
  double typo_prob = 0.06;
  /// Per-token chance of being dropped (never drops the last token).
  double drop_token_prob = 0.04;
  /// Chance of swapping one adjacent token pair in the text.
  double swap_tokens_prob = 0.05;
  /// Per-token chance of truncation to a 3-4 character abbreviation.
  double abbreviate_prob = 0.02;
  /// Chance of appending 1-2 filler words (source-specific boilerplate).
  double filler_prob = 0.0;
  /// Filler vocabulary (required when filler_prob > 0).
  std::vector<std::string> filler_words;
};

/// Deterministic (given the Rng) text noise generator.
class CorruptionModel {
 public:
  explicit CorruptionModel(CorruptionConfig config = {})
      : config_(std::move(config)) {}

  /// Applies token-level and character-level noise to `text`.
  std::string CorruptText(std::string_view text, util::Rng& rng) const;

  /// Applies at most one random character edit to `token`.
  static std::string ApplyTypo(std::string_view token, util::Rng& rng);

  /// Replaces each digit with probability `per_digit_prob` (postcode noise).
  static std::string CorruptDigits(std::string_view value,
                                   double per_digit_prob, util::Rng& rng);

  const CorruptionConfig& config() const { return config_; }

 private:
  CorruptionConfig config_;
};

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_CORRUPTION_H_
