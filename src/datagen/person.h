#ifndef MULTIEM_DATAGEN_PERSON_H_
#define MULTIEM_DATAGEN_PERSON_H_

#include <cstdint>

#include "datagen/benchmark_data.h"

namespace multiem::datagen {

/// Synthetic counterpart of the paper's Person dataset (5 sources,
/// attributes givenname/surname/suburb/postcode). Records are short — four
/// terse fields — so *every* attribute carries a meaningful share of the
/// representation and attribute selection keeps all four (Table VII).
struct PersonConfig {
  /// Canonical people (paper-scale: 500k truth tuples from 5M records; the
  /// registry scales this down).
  size_t num_entities = 10000;
  size_t num_sources = 5;
  /// Presence probability per source (~4.2 average copies in the paper).
  double presence_prob = 0.84;
  /// Per-digit corruption probability of the postcode.
  double postcode_noise = 0.02;
  uint64_t seed = 5;
};

/// Generates the benchmark; deterministic given the config.
MultiSourceBenchmark GeneratePerson(const PersonConfig& config);

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_PERSON_H_
