/// \file scale.h
/// Streaming million-row corpus generator for the scale benchmarks
/// (bench/bench_scale.cpp) and CI scale jobs.
///
/// Unlike the Table-III-style generators (geo/music/person/shopee), which
/// assemble whole benchmarks in memory, this generator renders any row range
/// of any source on demand: every cell of row (source, row) derives from a
/// counter-based hash of (seed, source, row) — no shared rng stream — so
/// chunks can be produced in any order, in parallel, or re-produced later,
/// always byte-identically. A 10M-row corpus therefore never has to be
/// resident; callers stream chunks straight into the encoder or onto disk.
///
/// Entity overlap: the first `overlap * rows_per_source` rows of every
/// source render the SAME canonical entity per row index (with per-source
/// textual corruption — the cross-platform drift of Figure 1), so row r of
/// source a matches row r of source b for r below the shared prefix. The
/// remaining rows are globally unique entities. That yields a known
/// ground-truth match count at any scale without materializing a TupleSet.

#ifndef MULTIEM_DATAGEN_SCALE_H_
#define MULTIEM_DATAGEN_SCALE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/corruption.h"
#include "table/schema.h"
#include "table/table.h"

namespace multiem::datagen {

/// Shape of a streamed scale corpus. Total rows = num_sources *
/// rows_per_source; the defaults give 1M rows over 4 sources.
struct ScaleCorpusConfig {
  uint64_t seed = 42;
  size_t num_sources = 4;
  size_t rows_per_source = 250'000;
  /// Fraction of each source's rows that are copies of shared entities
  /// (present in every source); the rest are unique.
  double overlap = 0.3;
  /// Noise applied when rendering a shared entity into a source.
  CorruptionConfig corruption;
};

/// Stateless row-range renderer of the corpus described by a
/// ScaleCorpusConfig. All methods are const and thread-safe; any chunk
/// renders independently of every other.
class ScaleCorpusGenerator {
 public:
  explicit ScaleCorpusGenerator(ScaleCorpusConfig config);

  /// Common schema of every source: `title` and `color` carry the entity's
  /// identity signal; `sku` is per-copy random noise (so attribute
  /// selection has something to reject at scale).
  const table::Schema& schema() const { return schema_; }

  size_t num_sources() const { return config_.num_sources; }
  size_t rows_per_source() const { return config_.rows_per_source; }
  size_t total_rows() const {
    return config_.num_sources * config_.rows_per_source;
  }

  /// Rows [0, shared_rows()) of every source render shared entities: row r
  /// of any two sources is a ground-truth match.
  size_t shared_rows() const { return shared_rows_; }

  std::string source_name(size_t source) const {
    return "scale_" + std::to_string(source);
  }

  /// Renders one cell chunk: rows [row_begin, row_end) of `source`,
  /// appended to `out` (a table with schema()). Byte-identical for a given
  /// (config, source, row) regardless of chunking or call order.
  void AppendRows(size_t source, size_t row_begin, size_t row_end,
                  table::Table* out) const;

  /// Whole source in one table — for tests and sub-million corpora; prefer
  /// AppendRows chunking beyond that.
  table::Table MaterializeSource(size_t source) const;

 private:
  ScaleCorpusConfig config_;
  table::Schema schema_;
  size_t shared_rows_ = 0;
  CorruptionModel corruption_;
};

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_SCALE_H_
