#include "datagen/music.h"

#include "datagen/corruption.h"
#include "datagen/vocab.h"

namespace multiem::datagen {

namespace {

// Per-source opaque record id, e.g. "WoM94369364".
std::string MakeRecordId(util::Rng& rng) {
  std::string id = "WoM";
  for (int i = 0; i < 8; ++i) {
    id += static_cast<char>('0' + rng.NextBounded(10));
  }
  return id;
}

}  // namespace

MultiSourceBenchmark GenerateMusic(const MusicConfig& config) {
  util::Rng rng(config.seed);
  table::Schema schema({"id", "number", "title", "length", "artist", "album",
                        "year", "language"});
  MultiSourceAssembler assembler(config.num_sources, schema);

  CorruptionConfig noise;
  noise.typo_prob = 0.06;
  noise.drop_token_prob = 0.05;
  noise.swap_tokens_prob = 0.04;
  noise.abbreviate_prob = 0.02;
  CorruptionModel corruptor(noise);

  for (size_t e = 0; e < config.num_entities; ++e) {
    // Canonical song metadata.
    size_t title_words = 2 + rng.NextBounded(3);
    std::string title = PickPhrase(MusicTitleWords(), title_words, rng);
    std::string artist = std::string(Pick(GivenNames(), rng)) + " " +
                         std::string(Pick(Surnames(), rng));
    std::string album = PickPhrase(AlbumWords(), 1 + rng.NextBounded(2), rng);
    // The canonical track number is never emitted (every source re-rolls its
    // own edition's number below), but the draw must stay: dropping it would
    // shift the RNG stream and change every generated corpus.
    [[maybe_unused]] int64_t number = rng.UniformInt(1, 20);
    int64_t length = rng.UniformInt(120, 480);
    int64_t year = rng.UniformInt(1970, 2023);
    // Languages are heavily skewed toward one value, as in real catalogs.
    std::string language =
        rng.Bernoulli(0.6) ? "english" : std::string(Pick(Languages(), rng));

    std::vector<MultiSourceAssembler::Copy> copies;
    for (uint32_t s = 0; s < config.num_sources; ++s) {
      if (!rng.Bernoulli(config.presence_prob)) continue;
      // Sources disagree on the auxiliary metadata — the defining property of
      // the MSCD corpora: ids are per-source codes, track numbers come from
      // different editions, lengths are re-measured, years and language tags
      // suffer data-entry drift. These fields therefore *hurt* matching
      // unless attribute selection removes them (the EER ablation of
      // Table IV). The informative text fields only pick up typos/drops.
      int64_t source_number = rng.UniformInt(1, 20);
      int64_t source_length = length + rng.UniformInt(-40, 40);
      int64_t source_year =
          rng.Bernoulli(0.5) ? rng.UniformInt(1970, 2023) : year;
      std::string source_language =
          rng.Bernoulli(0.3) ? std::string(Pick(Languages(), rng)) : language;
      MultiSourceAssembler::Copy copy;
      copy.source = s;
      copy.cells = {
          MakeRecordId(rng),
          std::to_string(source_number),
          corruptor.CorruptText(title, rng),
          std::to_string(source_length),
          corruptor.CorruptText(artist, rng),
          corruptor.CorruptText(album, rng),
          std::to_string(source_year),
          source_language,
      };
      copies.push_back(std::move(copy));
    }
    assembler.AddEntity(std::move(copies));
  }
  return assembler.Finish("Music", rng);
}

}  // namespace multiem::datagen
