#ifndef MULTIEM_DATAGEN_MUSIC_H_
#define MULTIEM_DATAGEN_MUSIC_H_

#include <cstdint>

#include "datagen/benchmark_data.h"

namespace multiem::datagen {

/// Synthetic counterpart of the paper's Music-20/200/2000 family (the MSCD
/// corpora): 5 sources, attributes id/number/title/length/artist/album/
/// year/language. The informative attributes are title/artist/album; id is a
/// per-source opaque code, number/length/year are short numerics and
/// language is a 5-value categorical — attribute selection should keep
/// exactly {title, artist, album} (Table VII).
struct MusicConfig {
  /// Number of canonical songs. The paper family is 5k/50k/500k truth
  /// tuples; this library's registry scales those down (see datasets.cc).
  size_t num_entities = 5000;
  size_t num_sources = 5;
  /// Presence probability per source (0.775 reproduces the paper's ~3.9
  /// average copies over 5 sources).
  double presence_prob = 0.775;
  uint64_t seed = 20;
};

/// Generates the benchmark; deterministic given the config.
MultiSourceBenchmark GenerateMusic(const MusicConfig& config);

}  // namespace multiem::datagen

#endif  // MULTIEM_DATAGEN_MUSIC_H_
