#include "datagen/corruption.h"

#include <algorithm>

#include "util/string_util.h"

namespace multiem::datagen {

std::string CorruptionModel::ApplyTypo(std::string_view token,
                                       util::Rng& rng) {
  std::string out(token);
  if (out.size() < 2) return out;
  constexpr std::string_view kAlphabet = "abcdefghijklmnopqrstuvwxyz";
  size_t pos = rng.NextBounded(out.size());
  switch (rng.NextBounded(4)) {
    case 0:  // swap adjacent characters
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(out.begin() + pos,
                 kAlphabet[rng.NextBounded(kAlphabet.size())]);
      break;
    default:  // replace
      out[pos] = kAlphabet[rng.NextBounded(kAlphabet.size())];
      break;
  }
  return out;
}

std::string CorruptionModel::CorruptDigits(std::string_view value,
                                           double per_digit_prob,
                                           util::Rng& rng) {
  std::string out(value);
  for (char& c : out) {
    if (c >= '0' && c <= '9' && rng.Bernoulli(per_digit_prob)) {
      c = static_cast<char>('0' + rng.NextBounded(10));
    }
  }
  return out;
}

std::string CorruptionModel::CorruptText(std::string_view text,
                                         util::Rng& rng) const {
  std::vector<std::string> tokens = util::SplitWhitespace(text);
  if (tokens.empty()) return std::string(text);

  // Token drops (keep at least one token).
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    bool last_chance = kept.empty() && i + 1 == tokens.size();
    if (!last_chance && rng.Bernoulli(config_.drop_token_prob)) continue;
    kept.push_back(std::move(tokens[i]));
  }

  // Adjacent swap.
  if (kept.size() >= 2 && rng.Bernoulli(config_.swap_tokens_prob)) {
    size_t i = rng.NextBounded(kept.size() - 1);
    std::swap(kept[i], kept[i + 1]);
  }

  // Character-level edits.
  for (std::string& token : kept) {
    if (rng.Bernoulli(config_.abbreviate_prob) && token.size() > 4) {
      token.resize(3 + rng.NextBounded(2));
    } else if (rng.Bernoulli(config_.typo_prob)) {
      token = ApplyTypo(token, rng);
    }
  }

  // Source boilerplate.
  if (!config_.filler_words.empty() && rng.Bernoulli(config_.filler_prob)) {
    size_t extra = 1 + rng.NextBounded(2);
    for (size_t i = 0; i < extra; ++i) {
      kept.push_back(
          config_.filler_words[rng.NextBounded(config_.filler_words.size())]);
    }
  }
  return util::Join(kept, " ");
}

}  // namespace multiem::datagen
