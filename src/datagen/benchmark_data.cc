#include "datagen/benchmark_data.h"

#include <numeric>

namespace multiem::datagen {

MultiSourceAssembler::MultiSourceAssembler(size_t num_sources,
                                           table::Schema schema)
    : num_sources_(num_sources),
      schema_(std::move(schema)),
      rows_per_source_(num_sources) {}

void MultiSourceAssembler::AddEntity(std::vector<Copy> copies) {
  std::vector<std::pair<uint32_t, size_t>> placed;
  placed.reserve(copies.size());
  for (Copy& copy : copies) {
    auto& rows = rows_per_source_[copy.source];
    placed.emplace_back(copy.source, rows.size());
    rows.push_back(std::move(copy.cells));
  }
  entity_copies_.push_back(std::move(placed));
}

MultiSourceBenchmark MultiSourceAssembler::Finish(std::string name,
                                                  util::Rng& rng) {
  MultiSourceBenchmark out;
  out.name = std::move(name);

  // Shuffle each source; remember where each pre-shuffle row landed.
  std::vector<std::vector<size_t>> new_position(num_sources_);
  for (size_t s = 0; s < num_sources_; ++s) {
    size_t n = rows_per_source_[s].size();
    std::vector<size_t> perm(n);  // perm[new_index] = old_index
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.Shuffle(perm);
    new_position[s].resize(n);
    for (size_t new_index = 0; new_index < n; ++new_index) {
      new_position[s][perm[new_index]] = new_index;
    }
    table::Table t("source_" + std::to_string(s), schema_);
    t.Reserve(n);
    for (size_t new_index = 0; new_index < n; ++new_index) {
      t.AppendRow(std::move(rows_per_source_[s][perm[new_index]])).CheckOk();
    }
    out.tables.push_back(std::move(t));
  }

  // Ground truth: entities with >= 2 copies anywhere.
  std::vector<eval::Tuple> truth;
  for (const auto& copies : entity_copies_) {
    if (copies.size() < 2) continue;
    eval::Tuple t;
    t.reserve(copies.size());
    for (auto [source, old_row] : copies) {
      t.push_back(table::EntityId(source, new_position[source][old_row]));
    }
    truth.push_back(std::move(t));
  }
  out.truth = eval::TupleSet(std::move(truth));
  return out;
}

}  // namespace multiem::datagen
