#ifndef MULTIEM_UTIL_MEMORY_H_
#define MULTIEM_UTIL_MEMORY_H_

#include <cstddef>

namespace multiem::util {

/// Current resident set size of this process in bytes (VmRSS from
/// /proc/self/status). Returns 0 on platforms without procfs.
size_t CurrentRssBytes();

/// Peak resident set size of this process in bytes (VmHWM). Returns 0 on
/// platforms without procfs. Monotone over the process lifetime, which is why
/// the Table VI bench runs each method in a fresh subprocess.
size_t PeakRssBytes();

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_MEMORY_H_
