#ifndef MULTIEM_UTIL_MEMORY_H_
#define MULTIEM_UTIL_MEMORY_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace multiem::util {

/// Current resident set size of this process in bytes (VmRSS from
/// /proc/self/status). Returns 0 on platforms without procfs.
size_t CurrentRssBytes();

/// Peak resident set size of this process in bytes (VmHWM). Returns 0 on
/// platforms without procfs. Monotone over the process lifetime, which is why
/// the Table VI bench runs each method in a fresh subprocess.
size_t PeakRssBytes();

/// x86 cache-line size; the alignment target for hot flat arrays (the HNSW
/// link slabs and vector payload), so a block never straddles a line it
/// doesn't have to.
inline constexpr size_t kCacheLineBytes = 64;

/// Minimal std::allocator replacement that over-aligns every allocation to
/// `Alignment` bytes (C++17 aligned operator new). Used through
/// CacheAlignedVector below for the flat ANN slabs.
template <typename T, size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^k");
  static_assert(Alignment >= alignof(T), "alignment below the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose buffer starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T>>;

/// A flat array that either owns its storage (a std::vector) or is a
/// read-only *view* over externally owned bytes — typically a section of an
/// mmap'd artifact — kept alive by a shared keepalive handle. This is the
/// storage type behind the zero-copy load path: `HnswIndex::Load` and the
/// pipeline-artifact loader bind their flat slabs directly onto mapped pages
/// instead of copying them, and the first mutation (`EnsureOwned`, or any
/// non-const accessor) materializes a private owned copy.
///
/// Copying a CowSlab is cheap while it is a view (the copy shares the view
/// and its keepalive — this is what lets consecutive serving epochs share
/// unchanged data) and a deep copy once owned. The container is deliberately
/// vector-shaped (`value_type`, `resize`, `data`) so it drops into
/// `ByteReader::ReadArrayInto` unchanged on the copying fallback path.
template <typename T, typename Alloc = std::allocator<T>>
class CowSlab {
 public:
  using value_type = T;

  CowSlab() = default;
  explicit CowSlab(std::vector<T, Alloc> v) : owned_(std::move(v)) {}

  /// Points this slab at externally owned, immutable elements. `keepalive`
  /// must keep `view`'s bytes valid for as long as any copy of this slab
  /// (or of its keepalive) lives.
  void BindView(std::span<const T> view, std::shared_ptr<const void> keepalive) {
    owned_.clear();
    owned_.shrink_to_fit();
    view_ = view;
    keepalive_ = std::move(keepalive);
  }

  bool is_view() const { return keepalive_ != nullptr; }

  /// The keepalive handle of a view (null when owned). Exposed so a
  /// container built over a CowSlab can hand out sub-views that share the
  /// same backing (EmbeddingMatrix::RowsView).
  const std::shared_ptr<const void>& keepalive() const { return keepalive_; }

  /// Materializes an owned private copy when this slab is a view; no-op when
  /// already owned. Every mutating member calls this, so explicit calls are
  /// only needed before raw const_cast-style writes through data().
  void EnsureOwned() {
    if (!is_view()) return;
    owned_.assign(view_.begin(), view_.end());
    view_ = {};
    keepalive_.reset();
  }

  size_t size() const { return is_view() ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }

  const T* data() const { return is_view() ? view_.data() : owned_.data(); }
  T* data() {
    EnsureOwned();
    return owned_.data();
  }

  const T& operator[](size_t i) const { return data()[i]; }
  T& operator[](size_t i) {
    EnsureOwned();
    return owned_[i];
  }

  std::span<const T> span() const { return {data(), size()}; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  void clear() {
    owned_.clear();
    view_ = {};
    keepalive_.reset();
  }

  void resize(size_t n) {
    EnsureOwned();
    owned_.resize(n);
  }
  void resize(size_t n, const T& v) {
    EnsureOwned();
    owned_.resize(n, v);
  }
  void reserve(size_t n) {
    EnsureOwned();
    owned_.reserve(n);
  }
  void push_back(const T& v) {
    EnsureOwned();
    owned_.push_back(v);
  }
  template <typename It>
  void append(It first, It last) {
    EnsureOwned();
    owned_.insert(owned_.end(), first, last);
  }

  /// Bytes held by the owned buffer (0 while a view — the pages belong to
  /// the mapped file and are shared between processes).
  size_t OwnedBytes() const { return owned_.capacity() * sizeof(T); }

 private:
  std::vector<T, Alloc> owned_;
  std::span<const T> view_;
  std::shared_ptr<const void> keepalive_;
};

/// Read-prefetch hint for the cache line at `p`. No-op where unsupported;
/// safe on any address (prefetch never faults). The HNSW hot loops use this
/// to pull the next neighbor's vector and link block while the current
/// distance is still being computed.
inline void PrefetchRead(const void* p) {
#if defined(__SSE2__)
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
#elif defined(__GNUC__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_MEMORY_H_
