#ifndef MULTIEM_UTIL_MEMORY_H_
#define MULTIEM_UTIL_MEMORY_H_

#include <cstddef>
#include <new>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace multiem::util {

/// Current resident set size of this process in bytes (VmRSS from
/// /proc/self/status). Returns 0 on platforms without procfs.
size_t CurrentRssBytes();

/// Peak resident set size of this process in bytes (VmHWM). Returns 0 on
/// platforms without procfs. Monotone over the process lifetime, which is why
/// the Table VI bench runs each method in a fresh subprocess.
size_t PeakRssBytes();

/// x86 cache-line size; the alignment target for hot flat arrays (the HNSW
/// link slabs and vector payload), so a block never straddles a line it
/// doesn't have to.
inline constexpr size_t kCacheLineBytes = 64;

/// Minimal std::allocator replacement that over-aligns every allocation to
/// `Alignment` bytes (C++17 aligned operator new). Used through
/// CacheAlignedVector below for the flat ANN slabs.
template <typename T, size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^k");
  static_assert(Alignment >= alignof(T), "alignment below the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose buffer starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Read-prefetch hint for the cache line at `p`. No-op where unsupported;
/// safe on any address (prefetch never faults). The HNSW hot loops use this
/// to pull the next neighbor's vector and link block while the current
/// distance is still being computed.
inline void PrefetchRead(const void* p) {
#if defined(__SSE2__)
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
#elif defined(__GNUC__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_MEMORY_H_
