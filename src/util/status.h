#ifndef MULTIEM_UTIL_STATUS_H_
#define MULTIEM_UTIL_STATUS_H_

#include <cstdlib>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace multiem::util {

/// Error category for a failed operation. Mirrors the small set of failure
/// classes this library can actually produce; extend only when a caller needs
/// to branch on the new code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< Caller passed something malformed (bad config, bad CSV).
  kNotFound,         ///< A named resource (file, column) does not exist.
  kOutOfRange,       ///< Index or parameter outside the valid domain.
  kFailedPrecondition,  ///< Object not in the required state for the call.
  kInternal,         ///< Invariant violation inside the library.
  kResourceExhausted,   ///< A configured budget (time/memory) was exceeded.
  kCancelled,        ///< The operation was cooperatively cancelled by the caller.
  kUnimplemented,    ///< The platform/build lacks support for the operation.
};

/// Returns the canonical spelling of a status code ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight success-or-error result used across all fallible public APIs.
///
/// The library does not throw exceptions across public boundaries (per the
/// style guides in /opt/skills/guides/cpp/databases); fallible operations
/// return Status or Result<T> instead. Ok statuses are cheap value types.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use only in
  /// contexts (tests, examples, benches) where failure is a programming error.
  void CheckOk() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-Status union: the return type for fallible functions that
/// produce a value. Inspect with ok(); access the value with value()/operator*.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path reads naturally).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(data_).ok()) {
      std::get<Status>(data_) =
          Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK when this holds a value.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

  /// The contained value. Aborts if this holds an error.
  const T& value() const& {
    CheckHasValue();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckHasValue();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckHasValue();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      std::get<Status>(data_).CheckOk();
      std::abort();  // Unreachable: CheckOk aborts on non-OK.
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace multiem::util

/// Propagates a non-OK Status from an expression to the caller.
#define MULTIEM_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::multiem::util::Status _status = (expr);           \
    if (!_status.ok()) return _status;                  \
  } while (0)

#endif  // MULTIEM_UTIL_STATUS_H_
