#ifndef MULTIEM_UTIL_RNG_H_
#define MULTIEM_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace multiem::util {

/// SplitMix64: tiny, fast 64-bit mixer. Used to seed Xoshiro and as a
/// stateless hash of 64-bit keys (deterministic across platforms).
///
/// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless mix of a 64-bit key; useful as a deterministic hash.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256**: the library-wide PRNG. Deterministic, fast, good statistical
/// quality; all randomized components (generators, merge-order shuffles, HNSW
/// level draws) take an explicit seed so experiments are reproducible.
///
/// Reference: Blackman & Vigna, http://prng.di.unimi.it/xoshiro256starstar.c
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal draw (Box-Muller, no caching).
  double Normal();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// `count` distinct indices sampled uniformly from [0, n) (Floyd's
  /// algorithm); if count >= n returns the identity permutation 0..n-1.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Index drawn from a discrete distribution proportional to `weights`
  /// (all weights must be >= 0; at least one > 0).
  size_t Discrete(const std::vector<double>& weights);

  /// The four xoshiro256** state words, for persistence (util/io.h
  /// artifacts): a restored generator continues the exact draw sequence of
  /// the saved one, so e.g. a reloaded HNSW index assigns the same levels to
  /// subsequently added nodes as the original would have.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  uint64_t s_[4];
};

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_RNG_H_
