#ifndef MULTIEM_UTIL_TIMER_H_
#define MULTIEM_UTIL_TIMER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace multiem::util {

/// Wall-clock stopwatch with microsecond resolution. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations in insertion order; used to report the
/// per-module breakdown of Figure 5 (S / R / M / P phases).
class PhaseTimings {
 public:
  /// Adds `seconds` to the phase named `name` (created if new).
  void Add(const std::string& name, double seconds) {
    for (auto& [phase, total] : phases_) {
      if (phase == name) {
        total += seconds;
        return;
      }
    }
    phases_.emplace_back(name, seconds);
  }

  /// Seconds recorded for `name`, or 0 if the phase never ran.
  double Get(const std::string& name) const {
    for (const auto& [phase, total] : phases_) {
      if (phase == name) return total;
    }
    return 0.0;
  }

  /// Sum of all phases.
  double TotalSeconds() const {
    double total = 0.0;
    for (const auto& [phase, secs] : phases_) total += secs;
    return total;
  }

  /// Phases in the order they were first recorded.
  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

 private:
  std::vector<std::pair<std::string, double>> phases_;
};

/// RAII helper: times a scope and adds the duration to a PhaseTimings entry.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseTimings* timings, std::string name)
      : timings_(timings), name_(std::move(name)) {}
  ~ScopedPhaseTimer() { timings_->Add(name_, timer_.ElapsedSeconds()); }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseTimings* timings_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_TIMER_H_
