#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <unordered_set>

namespace multiem::util {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string NormalizeWhitespace(std::string_view s) {
  return Join(SplitWhitespace(s), " ");
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is now the shorter string; keep one row of the DP table.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  if (n == 0) n = 1;
  if (a.size() < n && b.size() < n) return 1.0;
  if (a.size() < n || b.size() < n) return 0.0;
  std::unordered_set<uint64_t> grams_a;
  for (size_t i = 0; i + n <= a.size(); ++i) {
    grams_a.insert(HashString(a.substr(i, n)));
  }
  std::unordered_set<uint64_t> grams_b;
  for (size_t i = 0; i + n <= b.size(); ++i) {
    grams_b.insert(HashString(b.substr(i, n)));
  }
  size_t intersection = 0;
  for (uint64_t g : grams_b) {
    if (grams_a.count(g) > 0) ++intersection;
  }
  size_t uni = grams_a.size() + grams_b.size() - intersection;
  return uni == 0 ? 1.0 : static_cast<double>(intersection) / uni;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool LooksNumeric(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') i = 1;
  bool saw_digit = false;
  bool saw_dot = false;
  for (; i < s.size(); ++i) {
    unsigned char c = s[i];
    if (std::isdigit(c)) {
      saw_digit = true;
    } else if (c == '.' && !saw_dot) {
      saw_dot = true;
    } else {
      return false;
    }
  }
  return saw_digit;
}

double TokenLexicality(std::string_view token) {
  if (token.empty()) return 0.0;
  if (LooksNumeric(token)) {
    // Pure numbers carry signal proportional to how identifying they are:
    // 1-2 digit tokens (track numbers, coordinate integer parts) are
    // ambiguous; 4+ digit tokens (years, postcodes) are fairly specific.
    // Trained encoders show the same gradient.
    size_t digits = token.size() - (token[0] == '+' || token[0] == '-' ? 1 : 0);
    if (digits <= 2) return 0.3;
    if (digits == 3) return 0.45;
    return 0.7;
  }
  size_t letters = 0;
  size_t digits = 0;
  size_t vowels = 0;
  for (unsigned char c : token) {
    if (std::isalpha(c)) {
      ++letters;
      char lower = static_cast<char>(std::tolower(c));
      if (lower == 'a' || lower == 'e' || lower == 'i' || lower == 'o' ||
          lower == 'u') {
        ++vowels;
      }
    } else if (std::isdigit(c)) {
      ++digits;
    }
  }
  if (digits > 0 && letters > 0) {
    // Mixed letter-digit codes ("WoM14513028", "XPE5") behave like opaque
    // identifiers: the heavier the digit share the more opaque.
    double digit_share =
        static_cast<double>(digits) / static_cast<double>(letters + digits);
    return std::max(0.08, 0.45 * (1.0 - digit_share));
  }
  if (letters == 0) return 0.2;  // punctuation-only token
  // Long all-consonant strings look like serial codes, not words.
  double vowel_ratio = static_cast<double>(vowels) / letters;
  if (letters >= 6 && vowel_ratio < 0.15) return 0.3;
  return 1.0;
}

uint64_t HashString(std::string_view s) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string FormatDuration(double seconds) {
  char buf[32];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
  }
  return buf;
}

std::string FormatBytes(size_t bytes) {
  char buf[32];
  double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fG", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace multiem::util
