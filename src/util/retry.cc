#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace multiem::util {

uint64_t BackoffMs(const RetryPolicy& policy, size_t attempt) {
  if (attempt <= 1) return 0;
  double delay = static_cast<double>(policy.initial_backoff_ms);
  for (size_t i = 2; i < attempt; ++i) {
    delay *= policy.multiplier;
    if (delay >= static_cast<double>(policy.max_backoff_ms)) break;
  }
  delay = std::min(delay, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0.0) {
    // Uniform in [0,1) from the stateless mixer; same seed -> same schedule.
    double unit =
        static_cast<double>(Mix64(policy.jitter_seed ^ attempt) >> 11) *
        (1.0 / 9007199254740992.0);
    delay *= 1.0 - std::clamp(policy.jitter, 0.0, 1.0) * unit;
  }
  return static_cast<uint64_t>(delay);
}

namespace {

/// Sleeps `ms` in small slices so a cancellation raised mid-backoff is
/// noticed within ~10ms. Returns false if cancelled.
bool InterruptibleSleep(uint64_t ms, const std::function<bool()>& cancelled) {
  constexpr uint64_t kSliceMs = 10;
  uint64_t slept = 0;
  while (slept < ms) {
    if (cancelled && cancelled()) return false;
    uint64_t slice = std::min(kSliceMs, ms - slept);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    slept += slice;
  }
  return !(cancelled && cancelled());
}

}  // namespace

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status(size_t)>& fn,
                        const std::function<bool()>& cancelled,
                        size_t* attempts_out) {
  size_t max_attempts = std::max<size_t>(policy.max_attempts, 1);
  Status last;
  size_t attempts = 0;
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (cancelled && cancelled()) {
      if (attempts_out != nullptr) *attempts_out = attempts;
      return Status::Cancelled("retry cancelled before attempt " +
                               std::to_string(attempt));
    }
    attempts = attempt;
    last = fn(attempt);
    if (last.ok() || last.code() == StatusCode::kCancelled) break;
    if (attempt < max_attempts &&
        !InterruptibleSleep(BackoffMs(policy, attempt + 1), cancelled)) {
      if (attempts_out != nullptr) *attempts_out = attempts;
      return Status::Cancelled("retry cancelled during backoff after attempt " +
                               std::to_string(attempt));
    }
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return last;
}

}  // namespace multiem::util
