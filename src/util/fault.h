#ifndef MULTIEM_UTIL_FAULT_H_
#define MULTIEM_UTIL_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace multiem::util {

/// What an armed fault point does when its trigger hit is reached.
enum class FaultAction {
  kFail = 0,   ///< Return Status::Internal from the fault point.
  kCrash = 1,  ///< Terminate the process immediately (_exit, no cleanup).
  kDelay = 2,  ///< Sleep `delay_ms`, then continue normally.
};

/// One armed fault: the `hit`-th time (1-based) execution reaches the named
/// site, `action` triggers. A spec with hit == 3 lets the first two passes
/// through the site proceed untouched.
struct FaultSpec {
  std::string site;
  FaultAction action = FaultAction::kFail;
  uint64_t hit = 1;
  uint64_t delay_ms = 0;
};

/// Deterministic fault-injection plane. Fault points are compiled into the
/// binary unconditionally (`MULTIEM_FAULT_POINT("io.write.commit")`) and cost
/// one mutex-guarded map lookup when nothing is armed; tests and the crash
/// harness arm them programmatically (Arm / ScopedFaultArm) or via the
/// `MULTIEM_FAULT` environment variable:
///
///   MULTIEM_FAULT="site:action[:hit[:delay_ms]][,site:action...]"
///
/// where action is one of `fail`, `crash`, `delay`. Example:
///   MULTIEM_FAULT="merge.node.commit:crash:3"
/// crashes the process the third time a merge node is about to commit.
///
/// Site names are dotted lowercase paths, coarse-to-fine:
/// `<layer>.<operation>.<step>` — e.g. `io.write.stage`, `io.write.commit`,
/// `subprocess.fork`, `merge.node.commit`, `coordinator.reap`,
/// `pipeline.phase.commit`. Documented in docs/API.md "Crash safety & resume".
class FaultInjector {
 public:
  /// The process-wide injector. First access parses `MULTIEM_FAULT`.
  static FaultInjector& Global();

  /// Registers a passage through the named site: increments its hit counter
  /// and triggers the armed spec, if any, whose `hit` equals the new count.
  /// Returns OK when nothing triggers (the overwhelmingly common case).
  Status Hit(std::string_view site);

  /// Arms one fault. Replaces any existing spec for the same (site, hit).
  void Arm(const FaultSpec& spec);

  /// Parses one `site:action[:hit[:delay_ms]]` clause list (the MULTIEM_FAULT
  /// format) and arms every clause. Malformed clauses yield InvalidArgument
  /// and arm nothing.
  Status ArmFromString(std::string_view spec);

  /// Disarms every spec for `site`; hit counters are kept.
  void Disarm(std::string_view site);

  /// Disarms everything and zeroes all hit counters.
  void Reset();

  /// Times execution has passed through `site` (armed or not).
  uint64_t HitCount(std::string_view site) const;

  /// Every site name that has been hit at least once, sorted. For tests and
  /// for building random crash schedules over the real site inventory.
  std::vector<std::string> SitesHit() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::vector<FaultSpec>, std::less<>> armed_;
  std::map<std::string, uint64_t, std::less<>> hits_;
};

/// Test helper: arms a fault on construction, resets the global injector on
/// destruction so specs and counters never leak across tests.
class ScopedFaultArm {
 public:
  explicit ScopedFaultArm(const FaultSpec& spec) {
    FaultInjector::Global().Arm(spec);
  }
  ~ScopedFaultArm() { FaultInjector::Global().Reset(); }

  ScopedFaultArm(const ScopedFaultArm&) = delete;
  ScopedFaultArm& operator=(const ScopedFaultArm&) = delete;
};

}  // namespace multiem::util

/// Names a fault point. Compiled in always; returns Status::Internal from the
/// enclosing function when an armed `fail` spec triggers here.
#define MULTIEM_FAULT_POINT(site) \
  MULTIEM_RETURN_IF_ERROR(::multiem::util::FaultInjector::Global().Hit(site))

#endif  // MULTIEM_UTIL_FAULT_H_
