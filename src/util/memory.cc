#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace multiem::util {

namespace {

// Reads a "VmXXX:  <kB> kB" field from /proc/self/status.
size_t ReadProcStatusKb(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      std::sscanf(line + field_len, ": %zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

size_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS") * 1024; }

size_t PeakRssBytes() {
  size_t hwm = ReadProcStatusKb("VmHWM") * 1024;
  // Some kernels/containers omit VmHWM; fall back to the current RSS so
  // callers still get a usable lower bound.
  return hwm > 0 ? hwm : CurrentRssBytes();
}

}  // namespace multiem::util
