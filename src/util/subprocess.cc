#include "util/subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "util/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#define MULTIEM_HAS_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace multiem::util {

#ifdef MULTIEM_HAS_FORK

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget against a deadline; -1 (infinite) stays -1.
int64_t RemainingMs(int64_t deadline_ms) {
  if (deadline_ms < 0) return -1;
  int64_t left = deadline_ms - NowMs();
  return left < 0 ? 0 : left;
}

/// Reads exactly `size` bytes from `fd`, polling against the deadline.
/// EOF mid-read is InvalidArgument (a torn frame), EOF before the first
/// byte is NotFound.
Status ReadFull(int fd, uint8_t* out, size_t size, int64_t deadline_ms) {
  size_t got = 0;
  while (got < size) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    int64_t budget = RemainingMs(deadline_ms);
    int ready = ::poll(&pfd, 1,
                       budget < 0 ? -1 : static_cast<int>(
                                             budget > INT32_MAX ? INT32_MAX
                                                                : budget));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll on child pipe failed: ") +
                              std::strerror(errno));
    }
    if (ready == 0) {
      return Status::ResourceExhausted(
          "timed out waiting for a message from the child process");
    }
    ssize_t n = ::read(fd, out + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read from child pipe failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) {
        return Status::NotFound(
            "child process closed its message pipe (no message pending)");
      }
      return Status::InvalidArgument(
          "child process closed its message pipe mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<Subprocess> Subprocess::Fork(const ChildFn& fn) {
  MULTIEM_FAULT_POINT("subprocess.fork");
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Internal(std::string("pipe() failed: ") +
                            std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::Internal(std::string("fork() failed: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    // Child: run the callback and leave without unwinding the parent's
    // stack or running static destructors. A worker that dies on a signal
    // (or is SIGKILLed by fault injection) simply never reaches _exit —
    // the parent observes EOF on the pipe plus the wait status.
    ::close(fds[0]);
    // The default SIGPIPE action would kill a worker whose parent died
    // first; turn the write failure into an error return instead.
    ::signal(SIGPIPE, SIG_IGN);
    int code = 1;
    if (fn) code = fn(fds[1]);
    ::close(fds[1]);
    ::_exit(code & 0xff);
  }
  ::close(fds[1]);
  Subprocess child;
  child.pid_ = pid;
  child.read_fd_ = fds[0];
  return child;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      read_fd_(std::exchange(other.read_fd_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    this->~Subprocess();
    pid_ = std::exchange(other.pid_, -1);
    read_fd_ = std::exchange(other.read_fd_, -1);
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (pid_ > 0) {
    ::kill(static_cast<pid_t>(pid_), SIGKILL);
    int st = 0;
    while (::waitpid(static_cast<pid_t>(pid_), &st, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

Result<ExitStatus> Subprocess::Wait(int64_t timeout_ms) {
  if (pid_ <= 0) {
    return Status::FailedPrecondition("child process already reaped");
  }
  int64_t deadline_ms = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  for (;;) {
    int st = 0;
    pid_t r = ::waitpid(static_cast<pid_t>(pid_), &st, WNOHANG);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("waitpid failed: ") +
                              std::strerror(errno));
    }
    if (r > 0) {
      pid_ = -1;
      ExitStatus exit;
      if (WIFEXITED(st)) {
        exit.exited = true;
        exit.exit_code = WEXITSTATUS(st);
      } else if (WIFSIGNALED(st)) {
        exit.signaled = true;
        exit.term_signal = WTERMSIG(st);
      }
      return exit;
    }
    if (deadline_ms >= 0 && NowMs() >= deadline_ms) {
      return Status::ResourceExhausted(
          "timed out waiting for child process " + std::to_string(pid_) +
          " to exit");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status Subprocess::Kill(int signum) {
  if (pid_ <= 0) {
    return Status::FailedPrecondition("child process already reaped");
  }
  if (::kill(static_cast<pid_t>(pid_), signum) != 0) {
    return Status::Internal(std::string("kill failed: ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> Subprocess::ReadMessage(int64_t timeout_ms) {
  if (read_fd_ < 0) {
    return Status::FailedPrecondition("message pipe is closed");
  }
  int64_t deadline_ms = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  uint8_t header[4];
  MULTIEM_RETURN_IF_ERROR(ReadFull(read_fd_, header, 4, deadline_ms));
  uint32_t size = static_cast<uint32_t>(header[0]) |
                  (static_cast<uint32_t>(header[1]) << 8) |
                  (static_cast<uint32_t>(header[2]) << 16) |
                  (static_cast<uint32_t>(header[3]) << 24);
  std::vector<uint8_t> payload(size);
  if (size > 0) {
    Status read = ReadFull(read_fd_, payload.data(), size, deadline_ms);
    if (!read.ok()) {
      // A frame that started but never finished is torn regardless of which
      // low-level condition cut it short.
      if (read.code() == StatusCode::kNotFound) {
        return Status::InvalidArgument(
            "child process closed its message pipe mid-frame");
      }
      return read;
    }
  }
  return payload;
}

Status Subprocess::WriteMessage(int fd, const void* data, size_t size) {
  MULTIEM_FAULT_POINT("subprocess.write_message");
  if (size > UINT32_MAX) {
    return Status::InvalidArgument("message exceeds the 4 GiB frame limit");
  }
  uint8_t header[4] = {static_cast<uint8_t>(size),
                       static_cast<uint8_t>(size >> 8),
                       static_cast<uint8_t>(size >> 16),
                       static_cast<uint8_t>(size >> 24)};
  auto write_full = [fd](const uint8_t* bytes, size_t n) -> Status {
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::write(fd, bytes + done, n - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("write to message pipe failed: ") +
                                std::strerror(errno));
      }
      done += static_cast<size_t>(w);
    }
    return Status::Ok();
  };
  MULTIEM_RETURN_IF_ERROR(write_full(header, 4));
  return write_full(static_cast<const uint8_t*>(data), size);
}

#else  // !MULTIEM_HAS_FORK

Result<Subprocess> Subprocess::Fork(const ChildFn& fn) {
  (void)fn;
  return Status::Unimplemented("Subprocess requires a POSIX platform");
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      read_fd_(std::exchange(other.read_fd_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = std::exchange(other.pid_, -1);
  read_fd_ = std::exchange(other.read_fd_, -1);
  return *this;
}

Subprocess::~Subprocess() = default;

Result<ExitStatus> Subprocess::Wait(int64_t) {
  return Status::Unimplemented("Subprocess requires a POSIX platform");
}

Status Subprocess::Kill(int) {
  return Status::Unimplemented("Subprocess requires a POSIX platform");
}

Result<std::vector<uint8_t>> Subprocess::ReadMessage(int64_t) {
  return Status::Unimplemented("Subprocess requires a POSIX platform");
}

Status Subprocess::WriteMessage(int, const void*, size_t) {
  return Status::Unimplemented("Subprocess requires a POSIX platform");
}

#endif  // MULTIEM_HAS_FORK

}  // namespace multiem::util
