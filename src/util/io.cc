#include "util/io.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "util/fault.h"
#include "util/mmap.h"
#include "util/thread_pool.h"

namespace multiem::util {

namespace {

// Header layout (24 bytes, all little-endian):
//   [0, 8)   magic
//   [8, 12)  format version
//   [12, 16) section count
//   [16, 24) section-table offset
constexpr size_t kHeaderBytes = 24;

uint64_t LoadLe(const uint8_t* p, int width) {
  uint64_t v = 0;
  for (int i = width - 1; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::string MagicToTag(uint64_t magic) {
  std::string tag;
  for (int i = 0; i < 8; ++i) {
    char c = static_cast<char>(magic >> (8 * i));
    tag.push_back((c >= 0x20 && c < 0x7f) ? c : '?');
  }
  return tag;
}

size_t AlignUp(size_t offset, size_t align) {
  return (offset + align - 1) / align * align;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size, uint64_t state) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ULL;
  }
  return state;
}

// ---------------------------------------------------------------------------
// ByteWriter
// ---------------------------------------------------------------------------

void ByteWriter::WriteF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU32(bits);
}

void ByteWriter::WriteF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteBytes(s.data(), s.size());
}

void ByteWriter::WriteBytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

// On little-endian hosts a typed array's wire image is its memory image,
// so the bulk paths below collapse to one memcpy after the count word —
// this is the fast path the save/load MB/s numbers in bench_ann_micro
// measure. Big-endian hosts take the element loop.
template <typename T, typename WriteOne>
void WriteArrayImpl(ByteWriter& out, std::span<const T> values,
                    WriteOne write_one) {
  out.WriteU64(values.size());
  if constexpr (std::endian::native == std::endian::little) {
    out.WriteBytes(values.data(), values.size_bytes());
  } else {
    for (const T& v : values) write_one(v);
  }
}

void ByteWriter::WriteU8Array(std::span<const uint8_t> values) {
  WriteArrayImpl(*this, values, [&](uint8_t v) { WriteU8(v); });
}

void ByteWriter::WriteI8Array(std::span<const int8_t> values) {
  WriteArrayImpl(*this, values,
                 [&](int8_t v) { WriteU8(static_cast<uint8_t>(v)); });
}

void ByteWriter::WriteU16Array(std::span<const uint16_t> values) {
  WriteArrayImpl(*this, values, [&](uint16_t v) { WriteU16(v); });
}

void ByteWriter::WriteU32Array(std::span<const uint32_t> values) {
  WriteArrayImpl(*this, values, [&](uint32_t v) { WriteU32(v); });
}

void ByteWriter::WriteU64Array(std::span<const uint64_t> values) {
  WriteArrayImpl(*this, values, [&](uint64_t v) { WriteU64(v); });
}

void ByteWriter::WriteI32Array(std::span<const int32_t> values) {
  WriteArrayImpl(*this, values, [&](int32_t v) { WriteI32(v); });
}

void ByteWriter::WriteF32Array(std::span<const float> values) {
  WriteArrayImpl(*this, values, [&](float v) { WriteF32(v); });
}

void ByteWriter::WriteF64Array(std::span<const double> values) {
  WriteArrayImpl(*this, values, [&](double v) { WriteF64(v); });
}

// ---------------------------------------------------------------------------
// ByteReader
// ---------------------------------------------------------------------------

Status ByteReader::Take(size_t n, const uint8_t** out) {
  if (remaining() < n) {
    return Status::OutOfRange("binary section underflow: need " +
                              std::to_string(n) + " bytes, " +
                              std::to_string(remaining()) + " remain");
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::ReadU8(uint8_t* out) {
  const uint8_t* p;
  MULTIEM_RETURN_IF_ERROR(Take(1, &p));
  *out = *p;
  return Status::Ok();
}

Status ByteReader::ReadU16(uint16_t* out) {
  const uint8_t* p;
  MULTIEM_RETURN_IF_ERROR(Take(2, &p));
  *out = static_cast<uint16_t>(LoadLe(p, 2));
  return Status::Ok();
}

Status ByteReader::ReadU32(uint32_t* out) {
  const uint8_t* p;
  MULTIEM_RETURN_IF_ERROR(Take(4, &p));
  *out = static_cast<uint32_t>(LoadLe(p, 4));
  return Status::Ok();
}

Status ByteReader::ReadU64(uint64_t* out) {
  const uint8_t* p;
  MULTIEM_RETURN_IF_ERROR(Take(8, &p));
  *out = LoadLe(p, 8);
  return Status::Ok();
}

Status ByteReader::ReadI32(int32_t* out) {
  uint32_t bits;
  MULTIEM_RETURN_IF_ERROR(ReadU32(&bits));
  *out = static_cast<int32_t>(bits);
  return Status::Ok();
}

Status ByteReader::ReadF32(float* out) {
  uint32_t bits;
  MULTIEM_RETURN_IF_ERROR(ReadU32(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::Ok();
}

Status ByteReader::ReadF64(double* out) {
  uint64_t bits;
  MULTIEM_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::Ok();
}

Status ByteReader::ReadString(std::string* out) {
  uint32_t size;
  MULTIEM_RETURN_IF_ERROR(ReadU32(&size));
  const uint8_t* p;
  MULTIEM_RETURN_IF_ERROR(Take(size, &p));
  out->assign(reinterpret_cast<const char*>(p), size);
  return Status::Ok();
}

Status ByteReader::ExpectExhausted() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(
        "binary section has " + std::to_string(remaining()) +
        " unexpected trailing bytes (schema mismatch?)");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ArtifactWriter
// ---------------------------------------------------------------------------

ByteWriter& ArtifactWriter::AddSection(std::string name) {
  for (const auto& [existing, writer] : sections_) {
    if (existing == name) std::abort();  // duplicate section: programmer error
  }
  sections_.emplace_back(std::move(name), ByteWriter());
  return sections_.back().second;
}

std::vector<uint8_t> ArtifactWriter::Serialize() const {
  // Every payload starts on a kSectionAlignBytes boundary (deterministic
  // zero fill in the gaps) so that a reader mapping the file can hand out
  // in-place views of the flat slabs. Checksums cover payload bytes only;
  // the padding is protected by the bounds checks (a reader never reads it).
  std::vector<size_t> offsets;
  offsets.reserve(sections_.size());
  size_t cursor = kHeaderBytes;
  for (const auto& [name, payload] : sections_) {
    cursor = AlignUp(cursor, kSectionAlignBytes);
    offsets.push_back(cursor);
    cursor += payload.size();
  }
  const size_t table_offset = cursor;

  // Header + padded payloads.
  ByteWriter image;
  image.WriteU64(magic_);
  image.WriteU32(version_);
  image.WriteU32(static_cast<uint32_t>(sections_.size()));
  image.WriteU64(table_offset);
  static constexpr uint8_t kZeros[kSectionAlignBytes] = {};
  for (size_t i = 0; i < sections_.size(); ++i) {
    image.WriteBytes(kZeros, offsets[i] - image.size());
    const ByteWriter& payload = sections_[i].second;
    image.WriteBytes(payload.bytes().data(), payload.size());
  }

  // Section table, then its own checksum.
  ByteWriter table;
  for (size_t i = 0; i < sections_.size(); ++i) {
    const auto& [name, payload] = sections_[i];
    table.WriteU16(static_cast<uint16_t>(name.size()));
    table.WriteBytes(name.data(), name.size());
    table.WriteU64(offsets[i]);
    table.WriteU64(payload.size());
    table.WriteU64(Fnv1a64(payload.bytes().data(), payload.size()));
  }
  image.WriteBytes(table.bytes().data(), table.size());
  image.WriteU64(Fnv1a64(table.bytes().data(), table.size()));
  return image.bytes();
}

Status ArtifactWriter::WriteFile(const std::string& path) const {
  const std::vector<uint8_t> image = Serialize();
  const std::string tmp = path + ".tmp";
  // A crash between these two points leaves an orphaned `.tmp` (never a torn
  // destination file); SweepOrphanTmpFiles reclaims them on the next run.
  MULTIEM_FAULT_POINT("io.write.stage");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + tmp + "' for writing");
  }
  const size_t written = image.empty()
                             ? 0
                             : std::fwrite(image.data(), 1, image.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != image.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  {
    Status fault = FaultInjector::Global().Hit("io.write.commit");
    if (!fault.ok()) {
      std::remove(tmp.c_str());
      return fault;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ArtifactReader
// ---------------------------------------------------------------------------

Result<ArtifactReader> ArtifactReader::FromFile(const std::string& path,
                                                uint64_t magic,
                                                uint32_t max_version) {
  return FromFile(path, magic, max_version, ArtifactOpenOptions{});
}

Result<ArtifactReader> ArtifactReader::FromFile(
    const std::string& path, uint64_t magic, uint32_t max_version,
    const ArtifactOpenOptions& options) {
  ArtifactReader reader;
  reader.load_pool_ = options.verify_pool;

  if (options.mapping != ArtifactOpenOptions::Mapping::kDisable) {
    auto mapped = MmapFile::Open(path);
    if (mapped.ok()) {
      // The open-time validation streams the whole file once; the serving
      // phase after it is random access over the graph.
      mapped->AdviseSequential();
      auto holder = std::make_shared<MmapFile>(std::move(*mapped));
      reader.data_ = holder->bytes();
      reader.backing_ = std::move(holder);
      reader.mapped_ = true;
    } else if (options.mapping == ArtifactOpenOptions::Mapping::kRequire ||
               mapped.status().code() == StatusCode::kNotFound) {
      return Status(mapped.status().code(),
                    "'" + path + "': " + mapped.status().message());
    }
    // kPrefer falls through to the heap read on any other mmap failure.
  }

  if (!reader.mapped_) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::NotFound("artifact file '" + path + "' does not exist");
    }
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    auto bytes = std::make_shared<std::vector<uint8_t>>(
        size > 0 ? static_cast<size_t>(size) : 0);
    const size_t read =
        bytes->empty() ? 0 : std::fread(bytes->data(), 1, bytes->size(), f);
    std::fclose(f);
    if (read != bytes->size()) {
      return Status::InvalidArgument("cannot read artifact file '" + path +
                                     "'");
    }
    reader.data_ = std::span<const uint8_t>(bytes->data(), bytes->size());
    reader.backing_ = std::move(bytes);
  }

  Status status = reader.Init(magic, max_version, options);
  if (!status.ok()) {
    return Status(status.code(), "'" + path + "': " + status.message());
  }
  if (reader.mapped_) {
    // Init bounds every section extent against the *mapped* length, but the
    // file on disk can have been truncated since the fstat inside mmap —
    // touching a page past the new EOF would then SIGBUS instead of failing
    // cleanly. Re-stat before handing out spans that alias the mapping.
    std::error_code ec;
    const auto on_disk = std::filesystem::file_size(path, ec);
    if (ec || on_disk < reader.data_.size()) {
      return Status::InvalidArgument(
          "'" + path + "': file shrank to " +
          (ec ? std::string("<unreadable>") : std::to_string(on_disk)) +
          " bytes while opening (mapped " + std::to_string(reader.data_.size()) +
          "); refusing to bind sections over a truncated mapping");
    }
  }
  if (reader.mapped_ && options.warm_pages) {
    // Parallel first-touch page pass: fault the whole image in now, across
    // the pool's threads, instead of one page at a time on the first
    // queries. Reading one byte per page suffices — the kernel fills the
    // page either way — and the running sum (published through a volatile
    // sink) keeps the loop from being optimized away.
    static_cast<const MmapFile*>(reader.backing_.get())->AdviseWillNeed();
    constexpr size_t kPageBytes = 4096;
    const std::span<const uint8_t> bytes = reader.data_;
    const size_t pages = (bytes.size() + kPageBytes - 1) / kPageBytes;
    std::atomic<uint64_t> sink{0};
    ParallelFor(
        options.verify_pool, pages,
        [&](size_t page) {
          sink.fetch_add(bytes[page * kPageBytes], std::memory_order_relaxed);
        },
        /*min_block_size=*/256);
    static volatile uint64_t warm_sink;
    warm_sink = sink.load(std::memory_order_relaxed);
    (void)warm_sink;
  }
  if (reader.mapped_) {
    static_cast<const MmapFile*>(reader.backing_.get())->AdviseRandom();
  }
  return reader;
}

Result<ArtifactReader> ArtifactReader::FromBytes(std::vector<uint8_t> bytes,
                                                 uint64_t magic,
                                                 uint32_t max_version) {
  ArtifactReader reader;
  auto holder = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
  reader.data_ = std::span<const uint8_t>(holder->data(), holder->size());
  reader.backing_ = std::move(holder);
  MULTIEM_RETURN_IF_ERROR(reader.Init(magic, max_version, {}));
  return reader;
}

Status ArtifactReader::Init(uint64_t magic, uint32_t max_version,
                            const ArtifactOpenOptions& options) {
  deep_verify_ = options.verify == ArtifactOpenOptions::Verify::kFull;
  const std::span<const uint8_t> bytes = data_;
  if (bytes.size() < kHeaderBytes + 8) {
    return Status::InvalidArgument(
        "artifact truncated: " + std::to_string(bytes.size()) +
        " bytes is smaller than the minimal container");
  }
  const uint64_t file_magic = LoadLe(bytes.data(), 8);
  if (file_magic != magic) {
    return Status::InvalidArgument("artifact magic mismatch: expected '" +
                                   MagicToTag(magic) + "', found '" +
                                   MagicToTag(file_magic) + "'");
  }
  const uint32_t version = static_cast<uint32_t>(LoadLe(bytes.data() + 8, 4));
  if (version == 0 || version > max_version) {
    return Status::FailedPrecondition(
        "artifact format version " + std::to_string(version) +
        " is outside this build's supported range [1, " +
        std::to_string(max_version) + "]; rebuild the artifact or upgrade");
  }
  const uint32_t section_count =
      static_cast<uint32_t>(LoadLe(bytes.data() + 12, 4));
  const uint64_t table_offset = LoadLe(bytes.data() + 16, 8);
  // Subtraction form, not `table_offset + 8 > size`: a crafted offset near
  // 2^64 must not wrap past the check and reach Fnv1a64 (bytes.size() >=
  // kHeaderBytes + 8 was established above, so the subtraction is safe).
  if (table_offset < kHeaderBytes || table_offset > bytes.size() - 8) {
    return Status::InvalidArgument(
        "artifact truncated: section table offset " +
        std::to_string(table_offset) + " is outside the " +
        std::to_string(bytes.size()) + "-byte file");
  }

  // The table's own trailing checksum first: it guards everything the
  // per-section checks rely on.
  const size_t table_size = bytes.size() - 8 - table_offset;
  const uint64_t table_sum =
      Fnv1a64(bytes.data() + table_offset, table_size);
  if (table_sum != LoadLe(bytes.data() + table_offset + table_size, 8)) {
    return Status::InvalidArgument(
        "artifact section table checksum mismatch (corrupt or truncated "
        "file)");
  }

  version_ = version;
  ByteReader table(std::span<const uint8_t>(bytes.data() + table_offset,
                                            table_size));
  std::vector<uint64_t> checksums;
  checksums.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    uint16_t name_len;
    MULTIEM_RETURN_IF_ERROR(table.ReadU16(&name_len));
    if (table.remaining() < name_len) {
      return Status::InvalidArgument("artifact section table truncated");
    }
    SectionEntry entry;
    entry.name.resize(name_len);
    for (uint16_t c = 0; c < name_len; ++c) {
      uint8_t byte;
      MULTIEM_RETURN_IF_ERROR(table.ReadU8(&byte));
      entry.name[c] = static_cast<char>(byte);
    }
    uint64_t offset, size, checksum;
    MULTIEM_RETURN_IF_ERROR(table.ReadU64(&offset));
    MULTIEM_RETURN_IF_ERROR(table.ReadU64(&size));
    MULTIEM_RETURN_IF_ERROR(table.ReadU64(&checksum));
    // Overflow-safe extent check (`offset + size` could wrap): the offset
    // must land in [header, table) and the size fit in what remains.
    if (offset < kHeaderBytes || offset > table_offset ||
        size > table_offset - offset) {
      return Status::InvalidArgument("artifact section '" + entry.name +
                                     "' lies outside the payload area");
    }
    entry.offset = static_cast<size_t>(offset);
    entry.size = static_cast<size_t>(size);
    sections_.push_back(std::move(entry));
    checksums.push_back(checksum);
  }
  MULTIEM_RETURN_IF_ERROR(table.ExpectExhausted());

  // Alignment padding is deterministic zero fill and no checksum covers it,
  // so enforce the zeros here — every byte of a valid container is then
  // either validated content or provably-zero padding, keeping the
  // "any single-byte flip is rejected" guarantee intact.
  {
    size_t cursor = kHeaderBytes;
    for (const SectionEntry& s : sections_) {
      for (size_t b = cursor; b < s.offset && b < bytes.size(); ++b) {
        if (bytes[b] != 0) {
          return Status::InvalidArgument(
              "artifact padding byte at offset " + std::to_string(b) +
              " is non-zero (corrupt file)");
        }
      }
      cursor = std::max(cursor, s.offset + s.size);
    }
    for (size_t b = cursor; b < table_offset; ++b) {
      if (bytes[b] != 0) {
        return Status::InvalidArgument(
            "artifact padding byte at offset " + std::to_string(b) +
            " is non-zero (corrupt file)");
      }
    }
  }

  // Payload checksums last: the O(file size) part, skippable (kStructural)
  // and parallelizable across sections — the FNV-1a sweep is byte-serial
  // within one section but sections are independent.
  if (options.verify == ArtifactOpenOptions::Verify::kFull) {
    const size_t n = sections_.size();
    auto check_one = [&](size_t i) {
      return Fnv1a64(bytes.data() + sections_[i].offset, sections_[i].size) ==
             checksums[i];
    };
    size_t first_bad = n;
    if (options.verify_pool != nullptr && n > 1) {
      std::atomic<size_t> bad{n};
      ParallelFor(
          options.verify_pool, n,
          [&](size_t i) {
            if (!check_one(i)) {
              size_t cur = bad.load(std::memory_order_relaxed);
              while (i < cur && !bad.compare_exchange_weak(
                                    cur, i, std::memory_order_relaxed)) {
              }
            }
          },
          /*min_block_size=*/1);
      first_bad = bad.load(std::memory_order_relaxed);
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (!check_one(i)) {
          first_bad = i;
          break;
        }
      }
    }
    if (first_bad < n) {
      return Status::InvalidArgument("artifact section '" +
                                     sections_[first_bad].name +
                                     "' checksum mismatch (corrupt file)");
    }
  }
  return Status::Ok();
}

bool ArtifactReader::HasSection(std::string_view name) const {
  for (const SectionEntry& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

std::vector<std::string> ArtifactReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const SectionEntry& s : sections_) names.push_back(s.name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<ByteReader> ArtifactReader::Section(std::string_view name) const {
  for (const SectionEntry& s : sections_) {
    if (s.name == name) {
      return ByteReader(data_.subspan(s.offset, s.size));
    }
  }
  std::string present;
  for (const std::string& n : SectionNames()) {
    if (!present.empty()) present += ", ";
    present += n;
  }
  return Status::NotFound("artifact has no section '" + std::string(name) +
                          "' (present: " + present + ")");
}

}  // namespace multiem::util
