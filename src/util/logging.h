#ifndef MULTIEM_UTIL_LOGGING_H_
#define MULTIEM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace multiem::util {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Current minimum severity.
LogLevel GetLogLevel();

/// Emits one line to stderr if `level` passes the threshold. Thread-safe.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction; enables
/// `MULTIEM_LOG(kInfo) << "built index with " << n << " nodes";`.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace multiem::util

/// Usage: MULTIEM_LOG(kInfo) << "message " << value;
#define MULTIEM_LOG(severity)               \
  ::multiem::util::internal::LogStream(     \
      ::multiem::util::LogLevel::severity)

#endif  // MULTIEM_UTIL_LOGGING_H_
