/// \file mmap.h
/// Read-only memory-mapped files for zero-copy artifact serving.
///
/// MmapFile maps a whole file read-only and exposes it as a byte span. The
/// mapping is private (CoW) so a serving process can never write back, and
/// the kernel shares the clean pages between every process mapping the same
/// artifact — N serving processes pay for one copy of the index. On
/// platforms without mmap (`Supported()` returns false) Open fails with
/// Unimplemented and callers fall back to heap reads; nothing in the loading
/// stack hard-requires the syscall.

#ifndef MULTIEM_UTIL_MMAP_H_
#define MULTIEM_UTIL_MMAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.h"

namespace multiem::util {

/// RAII read-only mapping of one file. Move-only; the destructor unmaps.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Whether this build/platform can map files at all.
  static bool Supported();

  /// Maps `path` read-only. Fails with NotFound when the file does not
  /// exist, Unimplemented when the platform has no mmap, and Internal for
  /// other syscall failures. An empty file maps to an empty span.
  static Result<MmapFile> Open(const std::string& path);

  /// The mapped bytes; valid until destruction.
  std::span<const uint8_t> bytes() const { return {data(), size_}; }
  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }
  bool valid() const { return addr_ != nullptr || size_ == 0; }

  /// Access-pattern hints (madvise); best-effort no-ops where unsupported.
  /// Sequential suits the open-time checksum sweep, Random the serving
  /// phase's graph walks, WillNeed asks for eager read-ahead of everything.
  void AdviseSequential() const;
  void AdviseRandom() const;
  void AdviseWillNeed() const;

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_MMAP_H_
