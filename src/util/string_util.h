#ifndef MULTIEM_UTIL_STRING_UTIL_H_
#define MULTIEM_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace multiem::util {

/// ASCII lowercase copy of `s`.
std::string ToLower(std::string_view s);

/// Copy of `s` with leading/trailing ASCII whitespace removed.
std::string Trim(std::string_view s);

/// Splits `s` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Collapses runs of whitespace into single spaces and trims the ends.
std::string NormalizeWhitespace(std::string_view s);

/// Levenshtein edit distance (unit costs). O(|a|*|b|) time, O(min) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Jaccard similarity of the character n-gram multisets of `a` and `b`
/// (set semantics; n >= 1). Returns 1.0 when both are shorter than n.
double NgramJaccard(std::string_view a, std::string_view b, size_t n);

/// True if every character is an ASCII digit (and the string is non-empty).
bool IsAllDigits(std::string_view s);

/// True if `s` parses as a decimal number: optional sign, digits, at most one
/// dot ("-74.0060"). Rejects empty strings and lone signs/dots.
bool LooksNumeric(std::string_view s);

/// Heuristic "lexicality" of a token in [0, 1]: 1 for ordinary words, lower
/// for digit strings and mixed letter-digit codes. Used by the hashing
/// sentence encoder to mimic how trained language models discount identifiers
/// and serial numbers (cf. Example 1 of the MultiEM paper, where perturbing an
/// `id` column barely moves the Sentence-BERT embedding).
double TokenLexicality(std::string_view token);

/// FNV-1a 64-bit hash of `s` (stable across platforms and runs).
uint64_t HashString(std::string_view s);

/// Formats `seconds` the way the paper's Table V prints durations:
/// "6.1s", "4.2m", "1.3h".
std::string FormatDuration(double seconds);

/// Formats `bytes` as "16.3G" / "412.1M" / "13.2K" (Table VI style).
std::string FormatBytes(size_t bytes);

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_STRING_UTIL_H_
