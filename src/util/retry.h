#ifndef MULTIEM_UTIL_RETRY_H_
#define MULTIEM_UTIL_RETRY_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/status.h"

namespace multiem::util {

/// Capped exponential backoff with deterministic seeded jitter.
///
/// The delay before attempt `a` (a >= 2, 1-based) is
///   min(initial_backoff_ms * multiplier^(a-2), max_backoff_ms)
/// scaled by a jitter factor in [1 - jitter, 1] derived from
/// Mix64(jitter_seed ^ a) — the same seed always produces the same schedule,
/// so retry timing is reproducible in tests and benchmarks.
struct RetryPolicy {
  size_t max_attempts = 3;          ///< Total attempts, including the first.
  uint64_t initial_backoff_ms = 50;
  uint64_t max_backoff_ms = 2000;
  double multiplier = 2.0;
  double jitter = 0.25;             ///< Fraction of the delay randomized away.
  uint64_t jitter_seed = 0;
};

/// The (jittered) delay in milliseconds before 1-based attempt `attempt`.
/// Attempt 1 runs immediately (returns 0). Exposed for determinism tests.
uint64_t BackoffMs(const RetryPolicy& policy, size_t attempt);

/// Runs `fn(attempt)` (1-based attempt number) until it returns OK or the
/// policy's attempt budget is exhausted; sleeps the backoff delay between
/// attempts. `cancelled`, when non-null, is polled during backoff sleeps and
/// before each attempt; a true return aborts with kCancelled. A kCancelled
/// status from `fn` is returned immediately, never retried. On exhaustion the
/// last attempt's status is returned. `attempts_out`, when non-null, receives
/// the number of attempts actually made.
Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status(size_t)>& fn,
                        const std::function<bool()>& cancelled = nullptr,
                        size_t* attempts_out = nullptr);

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_RETRY_H_
