#include "util/status.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace multiem::util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOk() const {
  if (ok()) return;
  std::fprintf(stderr, "multiem: fatal status: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace multiem::util
