#include "util/rng.h"

#include <cmath>
#include <cstdlib>
#include <numbers>

namespace multiem::util {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) std::abort();
  // Lemire's nearly-divisionless method with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) std::abort();
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  std::vector<size_t> out;
  if (count >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(count);
  // Floyd's algorithm: for j in [n-count, n), pick t in [0, j]; insert t if
  // unseen else insert j. Linear scan is fine for the small counts we use.
  for (size_t j = n - count; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBounded(j + 1));
    bool seen = false;
    for (size_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0.0);
  if (total <= 0.0) std::abort();
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace multiem::util
