#ifndef MULTIEM_UTIL_THREAD_POOL_H_
#define MULTIEM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace multiem::util {

/// Fixed-size worker pool with a FIFO task queue.
///
/// This is the substrate behind MultiEM(parallel): the merging phase submits
/// one task per table pair at each hierarchy level, and the pruning phase
/// partitions tuples across workers (Section III-E of the paper). The pool is
/// created once per pipeline run so thread start-up cost is paid once.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1; 0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, n), splitting work into contiguous blocks across
/// `pool`. If `pool` is null or n is small, runs inline on the caller thread.
/// Blocks until all iterations complete.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 size_t min_block_size = 64);

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_THREAD_POOL_H_
