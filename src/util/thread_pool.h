#ifndef MULTIEM_UTIL_THREAD_POOL_H_
#define MULTIEM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace multiem::util {

class ThreadPool;

/// Completion latch for a set of tasks submitted to a ThreadPool.
///
/// Every task belongs to exactly one group (`ThreadPool::Submit(group, fn)`),
/// and `Wait()` blocks only on this group's tasks — never on tasks other pool
/// users submitted concurrently. While its group has queued tasks, a waiting
/// thread *helps*: it pops and runs them itself instead of sleeping. That
/// makes nested waits safe — a worker whose task waits on an inner group
/// drains that group's queue on its own stack, so the pool cannot deadlock on
/// nested ParallelFor — and it keeps the caller's core busy during the fan-in.
///
/// A group is reusable: after Wait() returns, more tasks may be submitted and
/// waited for. The group must outlive its tasks; the destructor waits for any
/// still pending. Several threads may Wait() on the same group concurrently.
class TaskGroup {
 public:
  /// Binds the group to `pool`; tasks are submitted via
  /// `pool.Submit(group, fn)`.
  explicit TaskGroup(ThreadPool& pool);

  /// Waits for any tasks still pending (so a group going out of scope can
  /// never leave tasks referencing dead stack frames).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Blocks until every task submitted to this group has finished running,
  /// helping with the group's queued tasks in the meantime (see class
  /// comment). Independent groups on the same pool never over-wait on each
  /// other.
  void Wait();

 private:
  friend class ThreadPool;

  struct State {
    size_t pending = 0;            // queued + running tasks; pool mutex guards
    std::condition_variable done;  // signalled on submit-to-group and drain
  };

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

/// Fixed-size worker pool with a FIFO task queue and task-group completion
/// tracking.
///
/// This is the substrate behind MultiEM(parallel): the merging phase submits
/// one task per table pair at each hierarchy level, and each pairwise merge
/// fans its ANN queries out as a nested group (Section III-E of the paper).
/// The pool is created once per pipeline run so thread start-up cost is paid
/// once. Concurrent users (e.g. two pipeline runs sharing one pool) are
/// isolated by their groups.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1; 0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task under `group` (which must be bound to this pool and
  /// outlive the task). Tasks must not throw. Safe from any thread, including
  /// pool workers.
  void Submit(TaskGroup& group, std::function<void()> task);

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<TaskGroup::State> group;
  };

  void WorkerLoop();

  /// Pops the next queued task, or the next task of `group` when non-null;
  /// returns false if there is none. Caller holds mu_.
  bool PopTaskLocked(const TaskGroup::State* group, Task* out);

  /// Completion bookkeeping for one finished task. Caller holds mu_.
  void FinishTaskLocked(TaskGroup::State& group);

  std::vector<std::thread> threads_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;  // workers sleep here
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, n), splitting work into contiguous blocks across
/// `pool`. If `pool` is null or n is small, runs inline on the caller thread.
/// Blocks until all iterations complete. Safe to call from inside a pool
/// task: the nested call submits under its own TaskGroup and the blocked
/// caller helps run it.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 size_t min_block_size = 64);

/// Non-blocking variant: submits the blocked iteration space of `fn` under
/// `group` and returns immediately (at least one block, even for tiny n, so
/// several Apply calls on one group all overlap). The caller must keep the
/// data captured by `fn` alive until `group.Wait()`; `fn` itself is copied
/// into the tasks.
void ParallelApply(ThreadPool& pool, TaskGroup& group, size_t n,
                   const std::function<void(size_t)>& fn,
                   size_t min_block_size = 64);

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_THREAD_POOL_H_
