#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace multiem::util {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[multiem %s] %s\n", LevelName(level),
               message.c_str());
}

}  // namespace multiem::util
