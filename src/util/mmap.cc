#include "util/mmap.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MULTIEM_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define MULTIEM_HAS_MMAP 0
#endif

namespace multiem::util {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
#if MULTIEM_HAS_MMAP
    if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() {
#if MULTIEM_HAS_MMAP
  if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
}

bool MmapFile::Supported() { return MULTIEM_HAS_MMAP != 0; }

Result<MmapFile> MmapFile::Open(const std::string& path) {
#if MULTIEM_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("file '" + path + "' does not exist");
    }
    return Status::Internal("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("cannot stat '" + path + "': " + err);
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    // PROT_READ + MAP_PRIVATE: the mapping can never dirty the file, and
    // the clean pages are shared with every other process mapping it.
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("cannot mmap '" + path + "': " + err);
    }
    file.addr_ = addr;
  }
  // The mapping survives the descriptor; holding the fd open would only
  // burn a table slot per served artifact.
  ::close(fd);
  return file;
#else
  (void)path;
  return Status::Unimplemented(
      "mmap is not available on this platform; use the heap read path");
#endif
}

void MmapFile::AdviseSequential() const {
#if MULTIEM_HAS_MMAP
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_SEQUENTIAL);
#endif
}

void MmapFile::AdviseRandom() const {
#if MULTIEM_HAS_MMAP
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_RANDOM);
#endif
}

void MmapFile::AdviseWillNeed() const {
#if MULTIEM_HAS_MMAP
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_WILLNEED);
#endif
}

}  // namespace multiem::util
