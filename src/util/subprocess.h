/// \file subprocess.h
/// Minimal fork-based child-process management for the multi-process build
/// coordinator (src/distrib/coordinator.h): fork a worker that runs a C++
/// callback in a copy-on-write clone of the parent's address space, stream
/// length-framed messages back over a pipe, and reap the child with a
/// timeout — no zombie is ever left behind, not even through the error
/// paths (the destructor SIGKILLs and reaps an unreaped child).
///
/// Why fork without exec: a worker needs the parent's in-memory input
/// tables. fork() shares them copy-on-write for free; an exec'd binary
/// would have to re-parse them from disk. The price is the usual
/// multithreaded-fork hazard: the child starts with only the forking
/// thread, so any lock another parent thread holds at fork time (malloc's
/// arena locks included) stays locked forever in the child. Callers must
/// therefore fork while the process is effectively single-threaded — the
/// coordinator forks every worker before creating any util::ThreadPool.
///
/// POSIX-only: on platforms without fork/pipe/waitpid every operation
/// returns Status::Unimplemented.

#ifndef MULTIEM_UTIL_SUBPROCESS_H_
#define MULTIEM_UTIL_SUBPROCESS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/status.h"

namespace multiem::util {

/// Exit state of a reaped child process.
struct ExitStatus {
  /// Child called _exit / returned from its callback.
  bool exited = false;
  int exit_code = 0;
  /// Child was terminated by a signal (SIGKILL after a timeout, a crash...).
  bool signaled = false;
  int term_signal = 0;

  bool ok() const { return exited && exit_code == 0; }
};

/// One forked child process, move-only; owns the child's pid and the read
/// end of its message pipe. All methods are for the parent side except the
/// static WriteMessage, which the child calls on the fd its callback
/// receives.
class Subprocess {
 public:
  /// The child's body: receives the write end of the message pipe and
  /// returns the process exit code. It runs in the forked child and must
  /// not return control to the caller's stack — Fork _exit()s with the
  /// returned code immediately (no atexit handlers, no static destructors,
  /// so the parent's buffered I/O is never double-flushed).
  using ChildFn = std::function<int(int message_fd)>;

  /// Forks and runs `fn` in the child. Returns the parent-side handle.
  /// See the file comment for the single-threaded-at-fork requirement.
  static Result<Subprocess> Fork(const ChildFn& fn);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// SIGKILLs and reaps the child if it has not been reaped yet.
  ~Subprocess();

  /// True until Wait() has successfully reaped the child.
  bool running() const { return pid_ > 0; }

  /// The child's pid (diagnostics); -1 after a successful Wait or a move.
  int64_t pid() const { return pid_; }

  /// Waits up to `timeout_ms` for the child to exit and reaps it. Returns
  /// ResourceExhausted when the deadline passes with the child still alive
  /// (the child keeps running; Kill + Wait again to dispose of it), or the
  /// child's ExitStatus. timeout_ms < 0 waits forever.
  Result<ExitStatus> Wait(int64_t timeout_ms);

  /// Sends `signum` to the child (e.g. SIGKILL on a timeout). The child
  /// must still be unreaped.
  Status Kill(int signum);

  /// Reads one length-framed message from the child, waiting up to
  /// `timeout_ms` (< 0 = forever) for it to arrive completely. Returns
  /// NotFound once the child has closed its end with no message pending
  /// (EOF — how a crashed worker is detected), ResourceExhausted on
  /// timeout.
  Result<std::vector<uint8_t>> ReadMessage(int64_t timeout_ms);

  /// Child-side: writes one message (u32-LE byte length + payload) to
  /// `fd`, handling partial writes. Safe for messages up to 4 GiB.
  static Status WriteMessage(int fd, const void* data, size_t size);

 private:
  Subprocess() = default;

  int64_t pid_ = -1;
  int read_fd_ = -1;
};

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_SUBPROCESS_H_
