#include "util/journal.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/io.h"
#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MULTIEM_JOURNAL_HAS_FSYNC 1
#endif

namespace multiem::util {
namespace {

constexpr uint64_t kJournalMagic = ArtifactMagic("MEMJRNL1");
constexpr size_t kHeaderBytes = 16;   // magic u64 + version u32 + reserved u32
constexpr size_t kFrameBytes = 12;    // length u32 + checksum u64
// A journal records phase/node progress, not bulk data; anything past this is
// garbage, not a record.
constexpr uint32_t kMaxRecordBytes = 1u << 28;

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
  return value;
}

void StoreU32(uint32_t value, uint8_t* p) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(value >> (8 * i));
}

void StoreU64(uint64_t value, uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(value >> (8 * i));
}

Status ReadWholeFile(const std::string& path, std::vector<uint8_t>* bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open journal '" + path + "'");
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot size journal '" + path + "'");
  }
  std::fseek(f, 0, SEEK_SET);
  bytes->resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(bytes->data(), 1, bytes->size(), f) != bytes->size()) {
    std::fclose(f);
    return Status::Internal("short read of journal '" + path + "'");
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace

Status Journal::Open(const std::string& path,
                     std::vector<std::string>* replayed) {
  if (is_open()) {
    return Status::FailedPrecondition("journal is already open");
  }
  if (replayed != nullptr) replayed->clear();

  size_t good_end = kHeaderBytes;
  bool existed = std::filesystem::exists(path);
  if (existed) {
    std::vector<uint8_t> bytes;
    MULTIEM_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));
    if (bytes.size() < kHeaderBytes) {
      // Crash before even the header landed: start the journal over.
      existed = false;
    } else {
      if (LoadU64(bytes.data()) != kJournalMagic) {
        return Status::InvalidArgument("'" + path +
                                       "' is not a MEMJRNL journal");
      }
      uint32_t version = LoadU32(bytes.data() + 8);
      if (version == 0 || version > kVersion) {
        return Status::FailedPrecondition(
            "journal '" + path + "' has version " + std::to_string(version) +
            "; this build reads up to " + std::to_string(kVersion));
      }
      size_t pos = kHeaderBytes;
      while (pos < bytes.size()) {
        if (bytes.size() - pos < kFrameBytes) break;  // torn frame
        uint32_t len = LoadU32(bytes.data() + pos);
        uint64_t checksum = LoadU64(bytes.data() + pos + 4);
        if (len > kMaxRecordBytes) {
          return Status::InvalidArgument(
              "journal '" + path + "' record at offset " +
              std::to_string(pos) + " declares implausible length " +
              std::to_string(len));
        }
        if (bytes.size() - pos - kFrameBytes < len) break;  // torn payload
        const uint8_t* payload = bytes.data() + pos + kFrameBytes;
        if (Fnv1a64(payload, len) != checksum) {
          return Status::InvalidArgument(
              "journal '" + path + "' record at offset " +
              std::to_string(pos) + " fails its checksum");
        }
        if (replayed != nullptr) {
          replayed->emplace_back(reinterpret_cast<const char*>(payload), len);
        }
        pos += kFrameBytes + len;
        good_end = pos;
      }
      if (good_end < bytes.size()) {
        MULTIEM_LOG(kWarning)
            << "journal '" << path << "': dropping torn tail ("
            << bytes.size() - good_end << " bytes past the last complete "
            << "record)";
        std::error_code ec;
        std::filesystem::resize_file(path, good_end, ec);
        if (ec) {
          return Status::Internal("cannot truncate torn journal '" + path +
                                  "': " + ec.message());
        }
      }
    }
  }

  if (!existed) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::InvalidArgument("cannot create journal '" + path +
                                     "': " + std::strerror(errno));
    }
    uint8_t header[kHeaderBytes] = {};
    StoreU64(kJournalMagic, header);
    StoreU32(kVersion, header + 8);
    if (std::fwrite(header, 1, kHeaderBytes, f) != kHeaderBytes) {
      std::fclose(f);
      std::remove(path.c_str());
      return Status::Internal("cannot write journal header to '" + path + "'");
    }
    std::fclose(f);
  }

  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::InvalidArgument("cannot open journal '" + path +
                                   "' for appending: " + std::strerror(errno));
  }
  path_ = path;
  return Status::Ok();
}

Status Journal::Append(std::string_view payload) {
  if (!is_open()) {
    return Status::FailedPrecondition("journal is not open");
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("journal record too large");
  }
  uint8_t frame[kFrameBytes];
  StoreU32(static_cast<uint32_t>(payload.size()), frame);
  StoreU64(Fnv1a64(payload.data(), payload.size()), frame + 4);
  if (std::fwrite(frame, 1, kFrameBytes, file_) != kFrameBytes ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file_) !=
           payload.size()) ||
      std::fflush(file_) != 0) {
    return Status::Internal("cannot append to journal '" + path_ + "'");
  }
#ifdef MULTIEM_JOURNAL_HAS_FSYNC
  if (fsync(fileno(file_)) != 0) {
    return Status::Internal("cannot fsync journal '" + path_ + "'");
  }
#endif
  return Status::Ok();
}

void Journal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

size_t SweepOrphanTmpFiles(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return 0;
  size_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() != ".tmp") continue;
    std::error_code rm_ec;
    if (std::filesystem::remove(p, rm_ec) && !rm_ec) {
      MULTIEM_LOG(kInfo) << "swept orphaned temp file '" << p.string() << "'";
      ++removed;
    }
  }
  return removed;
}

}  // namespace multiem::util
