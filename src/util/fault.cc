#include "util/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MULTIEM_FAULT_HAS_EXIT 1
#endif

namespace multiem::util {
namespace {

/// Exit code of a `crash` action; distinct from assert/sanitizer aborts so
/// the kill-resume harness can tell an injected crash from a real bug.
constexpr int kCrashExitCode = 42;

Result<FaultAction> ParseAction(std::string_view token) {
  if (token == "fail") return FaultAction::kFail;
  if (token == "crash") return FaultAction::kCrash;
  if (token == "delay") return FaultAction::kDelay;
  return Status::InvalidArgument("unknown fault action '" + std::string(token) +
                                 "' (want fail|crash|delay)");
}

Result<uint64_t> ParseU64(std::string_view token) {
  if (token.empty()) return Status::InvalidArgument("empty numeric field");
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad numeric field '" +
                                     std::string(token) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("MULTIEM_FAULT");
        env != nullptr && env[0] != '\0') {
      Status s = inj->ArmFromString(env);
      if (!s.ok()) {
        MULTIEM_LOG(kWarning) << "ignoring malformed MULTIEM_FAULT: "
                              << s.ToString();
      }
    }
    return inj;
  }();
  return *injector;
}

Status FaultInjector::Hit(std::string_view site) {
  FaultSpec triggered;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t count = 0;
    if (auto it = hits_.find(site); it != hits_.end()) {
      count = ++it->second;
    } else {
      hits_.emplace(std::string(site), 1);
      count = 1;
    }
    if (auto it = armed_.find(site); it != armed_.end()) {
      for (const FaultSpec& spec : it->second) {
        if (spec.hit == count) {
          triggered = spec;
          fire = true;
          break;
        }
      }
    }
  }
  if (!fire) return Status::Ok();
  switch (triggered.action) {
    case FaultAction::kFail:
      MULTIEM_LOG(kWarning) << "fault point '" << triggered.site
                            << "' (hit " << triggered.hit
                            << ") injecting failure";
      return Status::Internal("injected fault at '" + triggered.site + "'");
    case FaultAction::kCrash:
      MULTIEM_LOG(kWarning) << "fault point '" << triggered.site << "' (hit "
                            << triggered.hit << ") crashing process";
#ifdef MULTIEM_FAULT_HAS_EXIT
      _exit(kCrashExitCode);
#else
      std::abort();
#endif
    case FaultAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(triggered.delay_ms));
      return Status::Ok();
  }
  return Status::Ok();
}

void FaultInjector::Arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& specs = armed_[spec.site];
  for (FaultSpec& existing : specs) {
    if (existing.hit == spec.hit) {
      existing = spec;
      return;
    }
  }
  specs.push_back(spec);
}

Status FaultInjector::ArmFromString(std::string_view text) {
  std::vector<FaultSpec> parsed;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view clause = text.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    std::vector<std::string_view> fields;
    size_t fpos = 0;
    while (fpos <= clause.size()) {
      size_t fend = clause.find(':', fpos);
      if (fend == std::string_view::npos) fend = clause.size();
      fields.push_back(clause.substr(fpos, fend - fpos));
      fpos = fend + 1;
    }
    if (fields.size() < 2 || fields.size() > 4 || fields[0].empty()) {
      return Status::InvalidArgument(
          "fault clause '" + std::string(clause) +
          "' does not match site:action[:hit[:delay_ms]]");
    }
    FaultSpec spec;
    spec.site = std::string(fields[0]);
    auto action = ParseAction(fields[1]);
    MULTIEM_RETURN_IF_ERROR(action.status());
    spec.action = *action;
    if (fields.size() >= 3) {
      auto hit = ParseU64(fields[2]);
      MULTIEM_RETURN_IF_ERROR(hit.status());
      if (*hit == 0) {
        return Status::InvalidArgument("fault hit count is 1-based");
      }
      spec.hit = *hit;
    }
    if (fields.size() == 4) {
      auto delay = ParseU64(fields[3]);
      MULTIEM_RETURN_IF_ERROR(delay.status());
      spec.delay_ms = *delay;
    }
    parsed.push_back(std::move(spec));
  }
  for (const FaultSpec& spec : parsed) Arm(spec);
  return Status::Ok();
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = armed_.find(site); it != armed_.end()) armed_.erase(it);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hits_.clear();
}

uint64_t FaultInjector::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

std::vector<std::string> FaultInjector::SitesHit() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> sites;
  sites.reserve(hits_.size());
  for (const auto& [site, count] : hits_) sites.push_back(site);
  return sites;
}

}  // namespace multiem::util
