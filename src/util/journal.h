#ifndef MULTIEM_UTIL_JOURNAL_H_
#define MULTIEM_UTIL_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace multiem::util {

/// `MEMJRNL` — append-only, checksummed record journal (docs/FORMATS.md).
///
/// Layout: a 16-byte header (`u64` magic `MEMJRNL1`, `u32` version, `u32`
/// reserved zero), then records back to back, each
///
///   u32  payload length
///   u64  FNV-1a of the payload bytes
///   ...  payload
///
/// The journal is the crash-safe complement of the atomic artifact writer:
/// artifacts are replaced whole via tmp-and-rename, while progress records
/// are appended and fsynced one at a time. A crash mid-append leaves a *torn
/// tail* — fewer bytes than the last record's frame declares — which replay
/// detects, drops, and truncates away: the journal reopens as of the last
/// complete record. A *complete* record whose checksum mismatches is not a
/// torn write but corruption, and Open fails with InvalidArgument so the
/// caller can discard the journal rather than trust it.
class Journal {
 public:
  static constexpr uint32_t kVersion = 1;

  Journal() = default;
  ~Journal() { Close(); }

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if absent) the journal at `path` for appending, after
  /// replaying every complete record into `replayed` (cleared first). A torn
  /// final record is truncated off; a checksum-mismatched complete record
  /// fails with InvalidArgument and leaves the file untouched.
  Status Open(const std::string& path, std::vector<std::string>* replayed);

  /// Appends one record and flushes it to disk (fflush + fsync) so it
  /// survives a crash of this process immediately after return.
  Status Append(std::string_view payload);

  /// Closes the underlying file; further Appends fail.
  void Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Deletes every `*.tmp` file directly inside `dir` (non-recursive), logging
/// each removal. Crashed atomic writes (`ArtifactWriter::WriteFile`,
/// `Journal` siblings) orphan such temps; runs sweep them when (re)opening a
/// checkpoint or spill directory. Returns the number removed; a missing
/// directory sweeps zero files.
size_t SweepOrphanTmpFiles(const std::string& dir);

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_JOURNAL_H_
