/// \file io.h
/// The shared on-disk container behind every MultiEM artifact (saved ANN
/// indexes, fitted encoders, pipeline manifests — see docs/FORMATS.md for
/// the byte-level spec).
///
/// One artifact file is: a fixed 24-byte header (per-artifact-kind magic,
/// format version, section count, section-table offset), the section
/// payloads back to back, then a section table (name, offset, size, FNV-1a
/// checksum per section) itself protected by a trailing checksum. All
/// integers are little-endian regardless of host byte order, so an artifact
/// written on one machine loads on any other.
///
/// Writing is append-only and deterministic: the same logical content always
/// produces the same bytes, which is what lets CI gate on byte-identical
/// re-saves. Reading is fully validated up front — ArtifactReader::FromFile
/// verifies magic, version, table bounds, and every section checksum before
/// returning, so corrupt or truncated files fail with a clear util::Status
/// and never reach the typed readers.

#ifndef MULTIEM_UTIL_IO_H_
#define MULTIEM_UTIL_IO_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/memory.h"
#include "util/status.h"

namespace multiem::util {

class ThreadPool;

/// 64-bit FNV-1a over `size` bytes, continuing from `state` (pass the
/// default to start a fresh hash). Simple, fast, and byte-order independent;
/// used as the per-section corruption check of the artifact container.
inline constexpr uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t state = kFnv1a64Offset);

/// Packs an 8-character ASCII tag into the little-endian u64 artifact magic
/// (the tag reads verbatim in a hexdump of the first 8 file bytes).
constexpr uint64_t ArtifactMagic(const char (&tag)[9]) {
  uint64_t magic = 0;
  for (int i = 7; i >= 0; --i) {
    magic = (magic << 8) | static_cast<uint8_t>(tag[i]);
  }
  return magic;
}

/// Every section payload starts on a 64-byte (cache-line) boundary within
/// the container, with deterministic zero padding in the gaps. Combined with
/// the typed-array encoding (a u64 count, then the raw little-endian
/// elements, so array data sits 8 bytes past any 8-byte-aligned point) this
/// makes every flat slab in an artifact directly addressable in place — the
/// alignment guarantee the mmap zero-copy load path relies on. Pre-alignment
/// files (any artifact written before this padding existed) still load
/// through the same readers; they just may fall back to copying slabs whose
/// mapped address is misaligned for the element type.
inline constexpr size_t kSectionAlignBytes = 64;

/// How an artifact file should be opened and verified.
struct ArtifactOpenOptions {
  enum class Mapping {
    kDisable,  ///< Heap read (fread the whole image). The default.
    kPrefer,   ///< mmap when the platform supports it, else heap.
    kRequire,  ///< mmap or fail (tests; "I need page sharing").
  };
  enum class Verify {
    /// Validate header, bounds, the section table's checksum, and every
    /// section payload checksum before returning. The default.
    kFull,
    /// Validate header, bounds, and the table checksum only, skipping the
    /// O(file size) payload sweep. For re-opening artifacts this process
    /// (or a trusted peer) just wrote and verified: reload-to-first-query
    /// becomes O(pages actually touched). Semantic validation in the typed
    /// loaders still runs; flipped payload bytes surface there or not at all.
    kStructural,
  };

  Mapping mapping = Mapping::kDisable;
  Verify verify = Verify::kFull;
  /// When set, payload checksums are verified in parallel across sections
  /// on this pool (the FNV-1a sweep is the dominant open-time cost for
  /// multi-hundred-MB artifacts). Loaders may also use it via
  /// ArtifactReader::load_pool() for their own validation passes.
  ThreadPool* verify_pool = nullptr;
  /// Mapped opens only: first-touch every page of the image right after
  /// validation (parallel on verify_pool when set), so cold-cache page
  /// faults are paid up front by many threads instead of one by one on the
  /// serving path. Pointless with Verify::kFull, whose checksum sweep
  /// already reads every byte; it pays on kStructural opens of cold files,
  /// trading a slower open for a warm first query. No-op for heap reads.
  bool warm_pages = false;
};

/// Append-only little-endian byte buffer: the assembly surface for one
/// artifact section. Fixed-width writes only; strings and arrays carry
/// explicit lengths, so the stream is self-describing given its schema.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU16(uint16_t v) { AppendLe(v, 2); }
  void WriteU32(uint32_t v) { AppendLe(v, 4); }
  void WriteU64(uint64_t v) { AppendLe(v, 8); }
  void WriteI32(int32_t v) { AppendLe(static_cast<uint32_t>(v), 4); }
  /// IEEE-754 bit patterns, little-endian.
  void WriteF32(float v);
  void WriteF64(double v);
  /// u32 byte length + UTF-8 bytes (no terminator).
  void WriteString(std::string_view s);
  void WriteBytes(const void* data, size_t size);

  /// Typed bulk arrays: u64 element count + the elements.
  void WriteU8Array(std::span<const uint8_t> values);
  void WriteI8Array(std::span<const int8_t> values);
  void WriteU16Array(std::span<const uint16_t> values);
  void WriteU32Array(std::span<const uint32_t> values);
  void WriteU64Array(std::span<const uint64_t> values);
  void WriteI32Array(std::span<const int32_t> values);
  void WriteF32Array(std::span<const float> values);
  void WriteF64Array(std::span<const double> values);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  void AppendLe(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over one section's bytes (a view; the
/// owning ArtifactReader must outlive it). Every read returns OutOfRange
/// instead of walking past the end, so a schema mismatch degrades to a
/// Status, never UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadU16(uint16_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadF32(float* out);
  Status ReadF64(double* out);
  Status ReadString(std::string* out);

  /// Typed bulk arrays (the ByteWriter Write*Array counterparts). The
  /// element count is validated against the remaining bytes before any
  /// allocation, so a corrupted count cannot trigger an overlarge reserve.
  Status ReadU8Array(std::vector<uint8_t>* out) { return ReadArrayInto(out); }
  Status ReadI8Array(std::vector<int8_t>* out) { return ReadArrayInto(out); }
  Status ReadU16Array(std::vector<uint16_t>* out) { return ReadArrayInto(out); }
  Status ReadU32Array(std::vector<uint32_t>* out) { return ReadArrayInto(out); }
  Status ReadU64Array(std::vector<uint64_t>* out) { return ReadArrayInto(out); }
  Status ReadI32Array(std::vector<int32_t>* out) { return ReadArrayInto(out); }
  Status ReadF32Array(std::vector<float>* out) { return ReadArrayInto(out); }
  Status ReadF64Array(std::vector<double>* out) { return ReadArrayInto(out); }

  /// Same, into any contiguous vector-like container of 1/2/4/8-byte
  /// elements (util::CacheAlignedVector included) — this is the zero-
  /// temporary path big loaders use to read a slab straight into its final
  /// member: one bounds check, then (on little-endian hosts, where the wire
  /// image is the memory image) one memcpy.
  template <typename Vec>
  Status ReadArrayInto(Vec* out) {
    using T = typename Vec::value_type;
    static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                      sizeof(T) == 8,
                  "arrays hold 1/2/4/8-byte elements");
    uint64_t count;
    MULTIEM_RETURN_IF_ERROR(ReadU64(&count));
    // Validate before allocating: a corrupt count must not drive an
    // overlarge resize (and count * sizeof(T) below cannot overflow).
    if (count > remaining() / sizeof(T)) {
      return Status::OutOfRange(
          "binary array count " + std::to_string(count) + " exceeds the " +
          std::to_string(remaining()) + " remaining section bytes");
    }
    out->resize(static_cast<size_t>(count));
    const uint8_t* p;
    MULTIEM_RETURN_IF_ERROR(Take(static_cast<size_t>(count) * sizeof(T), &p));
    DecodeArray(p, static_cast<size_t>(count), out->data());
    return Status::Ok();
  }

  /// Zero-copy variant: binds `out` as a *view* over the array's wire bytes
  /// when that is sound — `keepalive` non-null (it must keep this section's
  /// bytes alive, e.g. ArtifactReader::backing()), a little-endian host
  /// (wire image == memory image), and the in-file address aligned for T —
  /// and otherwise falls back to an owned copy, bit-identical either way.
  /// This is how the flat HNSW slabs and entity-table columns serve straight
  /// from mapped pages.
  template <typename T, typename Alloc>
  Status ReadArrayCow(CowSlab<T, Alloc>* out,
                      const std::shared_ptr<const void>& keepalive) {
    static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                      sizeof(T) == 8,
                  "arrays hold 1/2/4/8-byte elements");
    uint64_t count;
    MULTIEM_RETURN_IF_ERROR(ReadU64(&count));
    if (count > remaining() / sizeof(T)) {
      return Status::OutOfRange(
          "binary array count " + std::to_string(count) + " exceeds the " +
          std::to_string(remaining()) + " remaining section bytes");
    }
    const uint8_t* p;
    MULTIEM_RETURN_IF_ERROR(Take(static_cast<size_t>(count) * sizeof(T), &p));
    const bool can_view =
        keepalive != nullptr &&
        std::endian::native == std::endian::little &&
        reinterpret_cast<uintptr_t>(p) % alignof(T) == 0;
    if (can_view) {
      out->BindView(std::span<const T>(reinterpret_cast<const T*>(p),
                                       static_cast<size_t>(count)),
                    keepalive);
    } else {
      out->clear();
      out->resize(static_cast<size_t>(count));
      DecodeArray(p, static_cast<size_t>(count), out->data());
    }
    return Status::Ok();
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

  /// InvalidArgument when trailing bytes remain — call after the last field
  /// to reject sections longer than their schema (a symptom of reading a
  /// newer writer's layout with an older reader).
  Status ExpectExhausted() const;

 private:
  Status Take(size_t n, const uint8_t** out);

  /// Decodes `count` wire elements at `p` into `out` (one memcpy on
  /// little-endian hosts, an element loop elsewhere).
  template <typename T>
  static void DecodeArray(const uint8_t* p, size_t count, T* out) {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, p, count * sizeof(T));
    } else {
      for (size_t i = 0; i < count; ++i) {
        uint64_t bits = 0;
        for (size_t b = sizeof(T); b-- > 0;) {
          bits = (bits << 8) | p[i * sizeof(T) + b];
        }
        if constexpr (sizeof(T) == 1) {
          const uint8_t narrow = static_cast<uint8_t>(bits);
          std::memcpy(&out[i], &narrow, sizeof(T));
        } else if constexpr (sizeof(T) == 2) {
          const uint16_t narrow = static_cast<uint16_t>(bits);
          std::memcpy(&out[i], &narrow, sizeof(T));
        } else if constexpr (sizeof(T) == 4) {
          const uint32_t narrow = static_cast<uint32_t>(bits);
          std::memcpy(&out[i], &narrow, sizeof(T));
        } else {
          std::memcpy(&out[i], &bits, sizeof(T));
        }
      }
    }
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Assembles one artifact: named sections appended in call order, then
/// WriteFile/Serialize emits header + payloads + checksummed section table.
/// Section names must be unique; writers emit sections in a fixed order so
/// equal content means equal bytes.
class ArtifactWriter {
 public:
  /// `magic` identifies the artifact kind (use ArtifactMagic("MEMINDEX"));
  /// `version` is that kind's format version, starting at 1.
  ArtifactWriter(uint64_t magic, uint32_t version)
      : magic_(magic), version_(version) {}

  /// Starts (or aborts on a duplicate name) a new section and returns its
  /// payload buffer; valid until the next AddSection call.
  ByteWriter& AddSection(std::string name);

  /// The complete artifact image.
  std::vector<uint8_t> Serialize() const;

  /// Serializes and writes the artifact to `path` (atomically via a
  /// same-directory temp file + rename, so readers never observe a torn
  /// file).
  Status WriteFile(const std::string& path) const;

 private:
  uint64_t magic_;
  uint32_t version_;
  std::vector<std::pair<std::string, ByteWriter>> sections_;
};

/// Opens and fully validates one artifact: magic, version, section-table
/// bounds, the table's own checksum, and every section checksum. After
/// FromFile/FromBytes succeeds, Section() lookups cannot fail for any reason
/// other than a missing name.
class ArtifactReader {
 public:
  /// Reads `path` expecting artifact kind `magic` at a version in
  /// [1, max_version]. Distinguishes the failure classes callers branch on:
  ///  * NotFound          — the file does not exist;
  ///  * InvalidArgument   — wrong magic, truncation, or checksum mismatch;
  ///  * FailedPrecondition — a version newer than `max_version` (the file is
  ///    valid, this build is just too old to read it).
  static Result<ArtifactReader> FromFile(const std::string& path,
                                         uint64_t magic,
                                         uint32_t max_version);

  /// As above, with explicit open behavior: `options.mapping` selects the
  /// heap read (default), mmap-with-fallback, or mmap-or-fail;
  /// `options.verify`/`options.verify_pool` control the checksum sweep (see
  /// ArtifactOpenOptions). A mapped reader shares its pages with every other
  /// process serving the same artifact, and its Section() bytes point
  /// straight into the mapping — the zero-copy substrate for the typed
  /// loaders.
  static Result<ArtifactReader> FromFile(const std::string& path,
                                         uint64_t magic, uint32_t max_version,
                                         const ArtifactOpenOptions& options);

  /// Same validation over an in-memory image (tests, transport).
  static Result<ArtifactReader> FromBytes(std::vector<uint8_t> bytes,
                                          uint64_t magic,
                                          uint32_t max_version);

  /// The artifact's format version (1-based).
  uint32_t version() const { return version_; }

  bool HasSection(std::string_view name) const;

  /// Sorted names of all sections (diagnostics, forward-compat probing).
  std::vector<std::string> SectionNames() const;

  /// A reader positioned at the start of section `name`, or NotFound listing
  /// the sections present.
  Result<ByteReader> Section(std::string_view name) const;

  /// True when this reader serves from an mmap'd file rather than a heap
  /// buffer. Typed loaders use this to decide whether binding views
  /// (ByteReader::ReadArrayCow with backing()) buys page sharing.
  bool mapped() const { return mapped_; }

  /// Shared handle keeping the underlying bytes (heap buffer or mapping)
  /// alive. Loaders binding zero-copy views must stash this as the views'
  /// keepalive; it is never null after FromFile/FromBytes succeed.
  const std::shared_ptr<const void>& backing() const { return backing_; }

  /// The pool FromFile was opened with (options.verify_pool), or null.
  /// Loaders may use it for their own parallel validation; it must outlive
  /// the load call, not the reader's whole lifetime.
  ThreadPool* load_pool() const { return load_pool_; }

  /// False when the file was opened with Verify::kStructural — the caller
  /// vouched for the payload bytes, so typed loaders may in turn skip their
  /// O(content) semantic sweeps and keep reload latency proportional to the
  /// pages actually touched.
  bool deep_verify() const { return deep_verify_; }

 private:
  struct SectionEntry {
    std::string name;
    size_t offset;
    size_t size;
  };

  ArtifactReader() = default;

  /// Validates the container image in data_/backing_ and fills version_ and
  /// sections_. `context` prefixes error messages (the file path).
  Status Init(uint64_t magic, uint32_t max_version,
              const ArtifactOpenOptions& options);

  std::span<const uint8_t> data_;
  std::shared_ptr<const void> backing_;
  bool mapped_ = false;
  bool deep_verify_ = true;
  ThreadPool* load_pool_ = nullptr;
  uint32_t version_ = 0;
  std::vector<SectionEntry> sections_;
};

/// Kind-dispatched loader registry, shared by every artifact family that
/// stores one of several polymorphic implementations (vector indexes, text
/// encoders): the family's meta section starts with a kind tag string, and
/// LoadFromFile opens + validates the container, reads the tag, and
/// dispatches the loader registered for it. Thread-safe; built-in loaders
/// are installed by the family's accessor function, third-party ones via
/// Register from any translation unit.
template <typename T>
class ArtifactLoaderRegistry {
 public:
  /// Reconstructs one implementation from an opened, validated artifact.
  using Loader =
      std::function<Result<std::unique_ptr<T>>(const ArtifactReader&)>;

  /// `what` names the family in error messages ("index", "encoder");
  /// `magic`/`max_version` validate the container; `meta_section` is the
  /// section whose first field is the kind tag.
  ArtifactLoaderRegistry(std::string what, uint64_t magic,
                         uint32_t max_version, std::string meta_section)
      : what_(std::move(what)),
        meta_section_(std::move(meta_section)),
        magic_(magic),
        max_version_(max_version) {}

  ArtifactLoaderRegistry(const ArtifactLoaderRegistry&) = delete;
  ArtifactLoaderRegistry& operator=(const ArtifactLoaderRegistry&) = delete;

  /// Registers `loader` under `kind`. Returns false (keeping the existing
  /// entry) when the kind is already taken.
  bool Register(std::string kind, Loader loader) {
    std::lock_guard<std::mutex> lock(mu_);
    return loaders_.emplace(std::move(kind), std::move(loader)).second;
  }

  /// Kind tags with a registered loader, sorted.
  std::vector<std::string> Kinds() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> kinds;
    kinds.reserve(loaders_.size());
    for (const auto& [kind, loader] : loaders_) kinds.push_back(kind);
    return kinds;
  }

  /// Opens the artifact at `path`, validates it, reads the kind tag, and
  /// dispatches the registered loader (unknown kinds fail with
  /// InvalidArgument listing the registered ones). `options` selects heap vs
  /// mmap backing and the verification mode (see ArtifactOpenOptions);
  /// loaders that understand zero-copy bind their slabs onto the mapping.
  Result<std::unique_ptr<T>> LoadFromFile(
      const std::string& path, const ArtifactOpenOptions& options = {}) const {
    auto artifact =
        ArtifactReader::FromFile(path, magic_, max_version_, options);
    if (!artifact.ok()) return artifact.status();

    auto meta = artifact->Section(meta_section_);
    if (!meta.ok()) return meta.status();
    std::string kind;
    MULTIEM_RETURN_IF_ERROR(meta->ReadString(&kind));

    Loader loader;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = loaders_.find(kind);
      if (it != loaders_.end()) loader = it->second;
    }
    if (!loader) {
      std::string kinds;
      for (const std::string& k : Kinds()) {
        if (!kinds.empty()) kinds += ", ";
        kinds += k;
      }
      return Status::InvalidArgument("no loader registered for " + what_ +
                                     " kind '" + kind +
                                     "' (registered: " + kinds + ")");
    }
    auto loaded = loader(*artifact);
    if (loaded.ok() && *loaded == nullptr) {
      return Status::Internal(what_ + " loader for kind '" + kind +
                              "' returned null");
    }
    return loaded;
  }

 private:
  std::string what_;
  std::string meta_section_;
  uint64_t magic_;
  uint32_t max_version_;
  mutable std::mutex mu_;
  std::map<std::string, Loader> loaders_;
};

}  // namespace multiem::util

#endif  // MULTIEM_UTIL_IO_H_
