#include "util/thread_pool.h"

#include <algorithm>

namespace multiem::util {

// ------------------------------------------------------------- TaskGroup --

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(&pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(pool_->mu_);
  for (;;) {
    // Help: run this group's queued tasks on the waiting thread. Restricting
    // the help to the *own* group bounds the stack (a nested wait only ever
    // runs leaf tasks of its nesting level) and keeps one group's Wait()
    // latency independent of other pool users' task sizes.
    ThreadPool::Task task;
    if (pool_->PopTaskLocked(state_.get(), &task)) {
      lock.unlock();
      task.fn();
      lock.lock();
      pool_->FinishTaskLocked(*task.group);
      continue;
    }
    if (state_->pending == 0) return;
    // The group's remaining tasks are running on other threads; sleep until
    // the group drains (or a new task of this group is submitted).
    state_->done.wait(lock);
  }
}

// ------------------------------------------------------------- ThreadPool --

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(TaskGroup& group, std::function<void()> task) {
  std::shared_ptr<TaskGroup::State> state = group.state_;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++state->pending;
    queue_.push_back(Task{std::move(task), state});
  }
  task_ready_.notify_one();
  // A thread already blocked in this group's Wait() can help with the new
  // task instead of sleeping until the drain.
  state->done.notify_all();
}

bool ThreadPool::PopTaskLocked(const TaskGroup::State* group, Task* out) {
  if (group == nullptr) {
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->group.get() == group) {
      *out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void ThreadPool::FinishTaskLocked(TaskGroup::State& group) {
  if (--group.pending == 0) group.done.notify_all();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    Task task;
    if (!PopTaskLocked(nullptr, &task)) {
      if (shutdown_) return;  // queue drained; exit
      continue;
    }
    lock.unlock();
    task.fn();
    lock.lock();
    FinishTaskLocked(*task.group);
  }
}

// ------------------------------------------------------------ ParallelFor --

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 size_t min_block_size) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= min_block_size) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TaskGroup group(*pool);
  ParallelApply(*pool, group, n, fn, min_block_size);
  group.Wait();
}

void ParallelApply(ThreadPool& pool, TaskGroup& group, size_t n,
                   const std::function<void(size_t)>& fn,
                   size_t min_block_size) {
  if (n == 0) return;
  min_block_size = std::max<size_t>(min_block_size, 1);
  // Split into ~4 blocks per worker so stragglers balance out.
  size_t num_blocks =
      std::min(n / min_block_size + 1, pool.num_threads() * 4);
  num_blocks = std::max<size_t>(num_blocks, 1);
  size_t block = (n + num_blocks - 1) / num_blocks;
  for (size_t start = 0; start < n; start += block) {
    size_t end = std::min(start + block, n);
    // fn is copied into each task: ParallelApply returns before the group is
    // waited, so the caller's std::function temporary may already be gone.
    pool.Submit(group, [start, end, fn] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
}

}  // namespace multiem::util
