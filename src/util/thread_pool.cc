#include "util/thread_pool.h"

#include <algorithm>

namespace multiem::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 size_t min_block_size) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= min_block_size) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Split into ~4 blocks per worker so stragglers balance out.
  size_t num_blocks =
      std::min(n / min_block_size + 1, pool->num_threads() * 4);
  num_blocks = std::max<size_t>(num_blocks, 1);
  size_t block = (n + num_blocks - 1) / num_blocks;
  for (size_t start = 0; start < n; start += block) {
    size_t end = std::min(start + block, n);
    pool->Submit([start, end, &fn] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace multiem::util
